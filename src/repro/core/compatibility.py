"""The compatibility matrix (Definition 3.4).

``C[i, j] = P(true value = d_i | observed value = d_j)``: each **column**
of the matrix is the conditional distribution of the true symbol given
one observed symbol, so columns sum to one (see Figure 2 of the paper,
where the columns are labelled "observed value").

The matrix is the probabilistic bridge between a noisy observation and
the underlying behaviour.  Special cases:

* the identity matrix recovers the classical (noise-free) support model;
* the all-``1/m`` matrix models pure noise, under which every pattern of
  a given shape has the same match.

This module also implements the two ways the paper constructs matrices
in its evaluation:

* :meth:`CompatibilityMatrix.uniform_noise` — the closed form for the
  uniform error channel of Section 5.1 (``1 - alpha`` on the diagonal,
  ``alpha / (m - 1)`` elsewhere);
* :meth:`CompatibilityMatrix.perturbed` — the controlled-error
  experiment of Figure 8, where each diagonal entry is moved by ``e%``
  and its column renormalised.

Finally, :func:`compatibility_from_channel` converts a *generating*
channel ``Q(observed | true)`` plus a prior over true symbols into the
compatibility matrix ``C(true | observed)`` via Bayes' rule — the
direction a domain expert or a clinical study would estimate it from.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import CompatibilityMatrixError

#: Tolerance used when validating that columns are probability
#: distributions.  Loose enough for float32 inputs, tight enough to
#: catch genuinely unnormalised matrices.
_COLUMN_SUM_TOLERANCE = 1e-6


class CompatibilityMatrix:
    """A validated ``m x m`` conditional-probability matrix.

    Parameters
    ----------
    values:
        Array-like of shape ``(m, m)``; ``values[i, j]`` is
        ``P(true = i | observed = j)``.  Columns must each sum to 1.
    validate:
        Skip validation when ``False`` (internal fast path for matrices
        already known to be stochastic).
    """

    __slots__ = ("_array",)

    def __init__(self, values: Iterable, validate: bool = True):
        array = np.asarray(values, dtype=np.float64)
        if validate:
            _validate(array)
        array = array.copy()
        array.setflags(write=False)
        self._array = array

    # -- constructors -------------------------------------------------------

    @classmethod
    def identity(cls, m: int) -> "CompatibilityMatrix":
        """The noise-free matrix: match degenerates to classical support."""
        if m < 1:
            raise CompatibilityMatrixError(f"m must be positive, got {m}")
        return cls(np.eye(m), validate=False)

    @classmethod
    def uniform_noise(cls, m: int, alpha: float) -> "CompatibilityMatrix":
        """Uniform error model of Section 5.1.

        Each observed symbol is its true self with probability
        ``1 - alpha`` and a misrepresentation of any specific other
        symbol with probability ``alpha / (m - 1)``.

        >>> C = CompatibilityMatrix.uniform_noise(5, 0.2)
        >>> float(C[0, 0])
        0.8
        """
        if m < 2:
            raise CompatibilityMatrixError(
                f"uniform noise needs at least 2 symbols, got m={m}"
            )
        if not 0.0 <= alpha <= 1.0:
            raise CompatibilityMatrixError(
                f"noise level alpha must lie in [0, 1], got {alpha}"
            )
        off = alpha / (m - 1)
        array = np.full((m, m), off)
        np.fill_diagonal(array, 1.0 - alpha)
        return cls(array, validate=False)

    @classmethod
    def pure_noise(cls, m: int) -> "CompatibilityMatrix":
        """The degenerate all-``1/m`` matrix (observation independent of
        truth); under it every pattern of equal shape has equal match."""
        if m < 1:
            raise CompatibilityMatrixError(f"m must be positive, got {m}")
        return cls(np.full((m, m), 1.0 / m), validate=False)

    @classmethod
    def random_sparse(
        cls,
        m: int,
        compatible_fraction: float = 0.1,
        diagonal_weight: float = 0.75,
        rng: Optional[np.random.Generator] = None,
    ) -> "CompatibilityMatrix":
        """A random sparse matrix as in the Section 5.7 scalability study.

        Each observed symbol is compatible with roughly
        ``compatible_fraction`` of the *other* symbols; the diagonal
        keeps about ``diagonal_weight`` of the column mass and the rest
        is spread over the randomly chosen compatible symbols.
        """
        if m < 1:
            raise CompatibilityMatrixError(f"m must be positive, got {m}")
        if not 0.0 <= compatible_fraction <= 1.0:
            raise CompatibilityMatrixError(
                "compatible_fraction must lie in [0, 1], "
                f"got {compatible_fraction}"
            )
        if not 0.0 < diagonal_weight <= 1.0:
            raise CompatibilityMatrixError(
                f"diagonal_weight must lie in (0, 1], got {diagonal_weight}"
            )
        rng = rng or np.random.default_rng()
        array = np.zeros((m, m))
        n_compatible = int(round(compatible_fraction * (m - 1)))
        for observed in range(m):
            if n_compatible == 0 or m == 1:
                array[observed, observed] = 1.0
                continue
            others = np.delete(np.arange(m), observed)
            chosen = rng.choice(others, size=n_compatible, replace=False)
            weights = rng.random(n_compatible)
            weights *= (1.0 - diagonal_weight) / weights.sum()
            array[observed, observed] = diagonal_weight
            array[chosen, observed] = weights
        return cls(array, validate=False)

    # -- derived matrices -----------------------------------------------------

    def perturbed(
        self, error: float, rng: Optional[np.random.Generator] = None
    ) -> "CompatibilityMatrix":
        """Inject estimation error, per the Figure 8 experiment.

        For every observed symbol (column) ``j`` the diagonal entry
        ``C[j, j]`` is scaled by ``1 ± error`` (sign equally likely) and
        the other entries of the column are rescaled so the column still
        sums to one.  ``error`` is a fraction, e.g. ``0.10`` for the
        paper's "10% error".
        """
        if error < 0:
            raise CompatibilityMatrixError(
                f"error must be non-negative, got {error}"
            )
        rng = rng or np.random.default_rng()
        array = self._array.copy()
        m = array.shape[0]
        for j in range(m):
            diag = array[j, j]
            sign = 1.0 if rng.random() < 0.5 else -1.0
            new_diag = float(np.clip(diag * (1.0 + sign * error), 0.0, 1.0))
            rest = 1.0 - diag
            new_rest = 1.0 - new_diag
            if rest > 0:
                scale = new_rest / rest
                array[:, j] *= scale
                array[j, j] = new_diag
            elif new_rest > 0:
                # Column was a point mass; spread the new error uniformly.
                array[:, j] = new_rest / max(m - 1, 1)
                array[j, j] = new_diag
        return CompatibilityMatrix(array)

    # -- accessors -----------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The underlying read-only ``(m, m)`` float64 array."""
        return self._array

    @property
    def size(self) -> int:
        """The number of distinct symbols *m*."""
        return self._array.shape[0]

    def prob(self, true_symbol: int, observed_symbol: int) -> float:
        """``P(true = true_symbol | observed = observed_symbol)``."""
        return float(self._array[true_symbol, observed_symbol])

    def column(self, observed_symbol: int) -> np.ndarray:
        """Distribution over true symbols for one observed symbol."""
        return self._array[:, observed_symbol]

    def row(self, true_symbol: int) -> np.ndarray:
        """Compatibility of one true symbol with every observed symbol."""
        return self._array[true_symbol, :]

    def is_identity(self) -> bool:
        """True when the matrix encodes the noise-free support model."""
        return bool(np.array_equal(self._array, np.eye(self.size)))

    def density(self) -> float:
        """Fraction of strictly positive entries (sparsity diagnostic)."""
        return float(np.count_nonzero(self._array) / self._array.size)

    def __getitem__(self, key):
        return self._array[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompatibilityMatrix):
            return NotImplemented
        return np.array_equal(self._array, other._array)

    def __hash__(self) -> int:  # immutable value object
        return hash(self._array.tobytes())

    def __repr__(self) -> str:
        return (
            f"CompatibilityMatrix(m={self.size}, "
            f"density={self.density():.2f})"
        )


def compatibility_from_channel(
    channel: np.ndarray, priors: Optional[Sequence[float]] = None
) -> CompatibilityMatrix:
    """Invert a generating channel into a compatibility matrix.

    Noise is *generated* by a channel ``Q[true, observed] =
    P(observed | true)`` (rows sum to one); the miner consumes the Bayes
    inverse ``C[true, observed] = P(true | observed)``:

    .. math::

        C(t \\mid o) = \\frac{Q(o \\mid t)\\, \\pi(t)}
                             {\\sum_{t'} Q(o \\mid t')\\, \\pi(t')}

    Parameters
    ----------
    channel:
        ``(m, m)`` row-stochastic array, ``channel[true, observed]``.
    priors:
        Prior probabilities of each true symbol; uniform when omitted.

    Notes
    -----
    For the uniform channel with uniform priors the result coincides
    with :meth:`CompatibilityMatrix.uniform_noise`, which is why the
    paper can use the same closed form for both directions.
    """
    q = np.asarray(channel, dtype=np.float64)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise CompatibilityMatrixError(
            f"channel must be square, got shape {q.shape}"
        )
    m = q.shape[0]
    row_sums = q.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=_COLUMN_SUM_TOLERANCE):
        raise CompatibilityMatrixError(
            "channel rows must each sum to 1 (they are P(observed | true))"
        )
    if priors is None:
        pi = np.full(m, 1.0 / m)
    else:
        pi = np.asarray(priors, dtype=np.float64)
        if pi.shape != (m,):
            raise CompatibilityMatrixError(
                f"priors must have shape ({m},), got {pi.shape}"
            )
        if np.any(pi < 0) or not np.isclose(pi.sum(), 1.0):
            raise CompatibilityMatrixError(
                "priors must be a probability distribution"
            )
    joint = q * pi[:, None]  # joint[t, o] = P(o | t) P(t)
    observed_marginal = joint.sum(axis=0)
    if np.any(observed_marginal <= 0):
        raise CompatibilityMatrixError(
            "some observed symbol has zero probability under the channel "
            "and priors; its posterior is undefined"
        )
    posterior = joint / observed_marginal[None, :]
    return CompatibilityMatrix(posterior)


def _validate(array: np.ndarray) -> None:
    """Raise :class:`CompatibilityMatrixError` unless column-stochastic."""
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise CompatibilityMatrixError(
            f"compatibility matrix must be square, got shape {array.shape}"
        )
    if array.shape[0] < 1:
        raise CompatibilityMatrixError("compatibility matrix must be non-empty")
    if np.any(np.isnan(array)):
        raise CompatibilityMatrixError("compatibility matrix contains NaN")
    if np.any(array < 0) or np.any(array > 1):
        raise CompatibilityMatrixError(
            "compatibility entries are conditional probabilities and must "
            "lie in [0, 1]"
        )
    column_sums = array.sum(axis=0)
    bad = np.flatnonzero(
        np.abs(column_sums - 1.0) > _COLUMN_SUM_TOLERANCE
    )
    if bad.size:
        raise CompatibilityMatrixError(
            f"columns {bad.tolist()} do not sum to 1 "
            f"(sums: {column_sums[bad].tolist()}); each observed symbol "
            "must induce a probability distribution over true symbols"
        )
