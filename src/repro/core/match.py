"""The match metric (Definitions 3.5-3.7) and its vectorised evaluation.

Three levels of aggregation, exactly as in the paper:

* ``M(P, s)`` — the match of pattern ``P`` against an equal-length
  segment ``s`` is the conditional probability that ``s`` is a (noisy)
  occurrence of ``P``:  the product of ``C(p_i, s_i)`` over the
  non-wildcard positions (wildcards contribute factor 1).
* ``M(P, S)`` — the match of ``P`` in a sequence ``S`` is the maximum of
  ``M(P, s)`` over all sliding-window segments of ``S``.
* ``M(P, D)`` — the match of ``P`` in a database ``D`` is the average of
  ``M(P, S)`` over the sequences of ``D``.

The sliding-window evaluation is vectorised: for each fixed pattern
position we gather one row of the compatibility matrix through the whole
sequence and multiply the shifted row slices, giving ``O(k · |S|)`` numpy
work for a weight-``k`` pattern.  :func:`symbol_matches` implements the
Phase-1 per-symbol pass with the paper's distinct-symbol optimisation
(``O(|S| + m²)`` per sequence instead of ``O(|S| · m)``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MiningError
from .compatibility import CompatibilityMatrix
from .pattern import Pattern, WILDCARD
from .sequence import (
    AnySequenceDatabase,
    SequenceLike,
    as_sequence_array,
    iter_chunks,
)


def segment_match(
    pattern: Pattern, segment: SequenceLike, matrix: CompatibilityMatrix
) -> float:
    """``M(P, s)`` for a segment of exactly the pattern's span.

    >>> from repro.core.pattern import Pattern, WILDCARD
    >>> from repro.core.compatibility import CompatibilityMatrix
    >>> C = CompatibilityMatrix.identity(3)
    >>> segment_match(Pattern([0, WILDCARD, 2]), [0, 1, 2], C)
    1.0
    """
    seg = as_sequence_array(segment)
    if len(seg) != pattern.span:
        raise MiningError(
            f"segment length {len(seg)} != pattern span {pattern.span}"
        )
    value = 1.0
    c = matrix.array
    for offset, symbol in pattern.fixed_positions:
        value *= c[symbol, seg[offset]]
        if value == 0.0:
            return 0.0
    return float(value)


def sequence_match(
    pattern: Pattern, sequence: SequenceLike, matrix: CompatibilityMatrix
) -> float:
    """``M(P, S)``: max window match of the pattern in the sequence.

    Returns 0.0 when the sequence is shorter than the pattern's span
    (no segment exists).
    """
    seq = as_sequence_array(sequence)
    return _sequence_match_array(pattern, seq, matrix.array)


def _sequence_match_array(
    pattern: Pattern, seq: np.ndarray, c: np.ndarray
) -> float:
    windows = len(seq) - pattern.span + 1
    if windows <= 0:
        return 0.0
    product: Optional[np.ndarray] = None
    for offset, symbol in pattern.fixed_positions:
        factors = c[symbol].take(seq[offset : offset + windows])
        if product is None:
            product = factors.copy()
        else:
            product *= factors
    assert product is not None  # patterns have at least one fixed position
    return float(product.max())


def window_matches(
    pattern: Pattern, sequence: SequenceLike, matrix: CompatibilityMatrix
) -> np.ndarray:
    """Match of the pattern against every sliding-window segment.

    Useful for locating *where* a pattern (approximately) occurs: the
    argmax of the returned vector is the best-aligned segment start.
    Returns an empty array when the sequence is shorter than the span.
    """
    seq = as_sequence_array(sequence)
    windows = len(seq) - pattern.span + 1
    if windows <= 0:
        return np.empty(0, dtype=np.float64)
    c = matrix.array
    product = np.ones(windows, dtype=np.float64)
    for offset, symbol in pattern.fixed_positions:
        product *= c[symbol].take(seq[offset : offset + windows])
    return product


def best_alignment(
    pattern: Pattern, sequence: SequenceLike, matrix: CompatibilityMatrix
) -> Tuple[int, float]:
    """``(start_position, match)`` of the best-aligned segment.

    Raises :class:`MiningError` when the sequence is shorter than the
    pattern's span.
    """
    scores = window_matches(pattern, sequence, matrix)
    if scores.size == 0:
        raise MiningError(
            "sequence is shorter than the pattern span; no alignment exists"
        )
    start = int(scores.argmax())
    return start, float(scores[start])


def database_match(
    pattern: Pattern,
    database: AnySequenceDatabase,
    matrix: CompatibilityMatrix,
) -> float:
    """``M(P, D)``: average sequence match over the database (one scan)."""
    c = matrix.array
    total = 0.0
    count = 0
    for _sid, seq in database.scan():
        total += _sequence_match_array(pattern, seq, c)
        count += 1
    return total / count


def database_matches(
    patterns: Sequence[Pattern],
    database: AnySequenceDatabase,
    matrix: CompatibilityMatrix,
) -> Dict[Pattern, float]:
    """Matches of many patterns computed in a **single** database scan.

    This is the primitive every miner uses: the number of calls to this
    function is exactly the number of passes over the data.

    Patterns are grouped by span and each group is evaluated with one
    vectorised pass per pattern position — ``O(span)`` numpy operations
    per group per sequence, regardless of the group's size — which is
    what makes large candidate levels affordable.
    """
    patterns = list(patterns)
    if not patterns:
        return {}
    groups: Dict[int, List[int]] = {}
    for index, pattern in enumerate(patterns):
        groups.setdefault(pattern.span, []).append(index)
    m = matrix.size
    # Element matrix per group: WILDCARD (-1) is remapped to a virtual
    # symbol m whose compatibility with everything is 1.
    group_elements = {
        span: np.array(
            [
                [e if e != WILDCARD else m for e in patterns[i].elements]
                for i in indices
            ],
            dtype=np.int64,
        )
        for span, indices in groups.items()
    }
    c_ext = np.vstack([matrix.array, np.ones((1, m))])

    totals = np.zeros(len(patterns), dtype=np.float64)
    count = 0
    for chunk in iter_chunks(database):
        for seq in chunk.rows:
            count += 1
            gathered = c_ext[:, seq]  # (m + 1, |S|)
            length = len(seq)
            for span, indices in groups.items():
                windows = length - span + 1
                if windows <= 0:
                    continue
                elements = group_elements[span]  # (k, span)
                scores = gathered[elements[:, 0], 0:windows]
                if span > 1:
                    scores = scores.copy()
                    for offset in range(1, span):
                        scores *= gathered[
                            elements[:, offset], offset : offset + windows
                        ]
                totals[indices] += scores.max(axis=1)
    if count == 0:
        raise MiningError("cannot compute matches over an empty database")
    return {p: float(t / count) for p, t in zip(patterns, totals)}


def clean_occurrence_match(
    pattern: Pattern, matrix: CompatibilityMatrix
) -> float:
    """The match a *noise-free* occurrence of the pattern scores.

    Even an exact occurrence is discounted by the matrix diagonal
    (``C(d, d) < 1`` means an observed ``d`` is not certainly a true
    ``d``), so match values live on a deflated scale relative to
    support.  This ceiling — ``Π C(p_i, p_i)`` over fixed positions —
    is the natural calibration factor between the two scales.
    """
    value = 1.0
    for _offset, symbol in pattern.fixed_positions:
        value *= matrix.prob(symbol, symbol)
    return value


def calibrated_min_match(
    support_threshold: float,
    matrix: CompatibilityMatrix,
    weight: int,
) -> float:
    """A match threshold equivalent to *support_threshold* for patterns
    of the given weight.

    Multiplies the support-scale threshold by the typical clean-
    occurrence match of a weight-``weight`` pattern (the mean matrix
    diagonal raised to the weight).  Use this to pick ``min_match`` when
    you think in support terms; the paper's very low thresholds (0.001
    for patterns of dozens of symbols) are this deflation at work.
    """
    if weight < 1:
        raise MiningError(f"weight must be >= 1, got {weight}")
    mean_diagonal = float(np.mean(np.diag(matrix.array)))
    return support_threshold * mean_diagonal**weight


def symbol_sequence_matches(
    sequence: SequenceLike, matrix: CompatibilityMatrix
) -> np.ndarray:
    """Per-symbol match within one sequence (Algorithm 4.1 inner loop).

    ``result[d] = max over observed symbols d' in the sequence of
    C(d, d')``.  Uses the paper's optimisation: only the *distinct*
    observed symbols matter, so the cost is ``O(|S| + m · u)`` where
    ``u`` is the number of distinct symbols present.
    """
    seq = as_sequence_array(sequence)
    distinct = np.unique(seq)
    if int(distinct[-1]) >= matrix.size:
        raise MiningError(
            f"sequence contains symbol {int(distinct[-1])} but the "
            f"compatibility matrix only covers {matrix.size} symbols"
        )
    return matrix.array[:, distinct].max(axis=1)


def symbol_matches(
    database: AnySequenceDatabase, matrix: CompatibilityMatrix
) -> np.ndarray:
    """Phase 1: the match of every individual symbol, in one scan.

    Returns an ``(m,)`` array where entry ``d`` is ``M(d, D)``,
    i.e. the database match of the 1-pattern consisting of symbol ``d``.
    """
    totals = np.zeros(matrix.size, dtype=np.float64)
    count = 0
    for _sid, seq in database.scan():
        totals += symbol_sequence_matches(seq, matrix)
        count += 1
    if count == 0:
        raise MiningError("cannot compute symbol matches over an empty database")
    return totals / count


def symbol_matches_and_sample(
    database: AnySequenceDatabase,
    matrix: CompatibilityMatrix,
    sample_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, "SequenceDatabase"]:
    """Algorithm 4.1 in full: one combined pass computing per-symbol
    matches **and** drawing a uniform random sample.

    The paper stresses that sampling is a free by-product of the Phase-1
    scan; this helper preserves that property (a single chunked
    ``scan_chunks()`` pass, streamed through :func:`iter_chunks` so any
    backend — in-memory, text file or packed store — is consumed the
    same way).

    The per-symbol maxima of each chunk are computed with the batched
    gather kernel and are bit-identical to
    :func:`symbol_sequence_matches` row by row (the padded gather adds
    only duplicate columns and zero-valued pad columns, neither of
    which can change an exact maximum over non-negative entries), and
    the totals are accumulated per row in scan order — so both the
    match vector and the reservoir sample (one RNG draw per row, in
    scan order) are bit-for-bit what the unchunked pass produced.

    ``sample_size >= len(database)`` is clamped to the database size:
    the sample is the whole database, selected deterministically in
    scan order without consuming the random stream.  ``sample_size < 1``
    is rejected.
    """
    from .sequence import SequenceDatabase  # local import to avoid a cycle
    # Kernel imports are call-time: engine.base imports this module.
    from ..engine.kernels import (
        chunk_symbol_maxima,
        extended_matrix,
        gather_chunk,
        pad_chunk,
    )

    total = len(database)
    if sample_size < 1:
        raise MiningError(
            f"cannot sample {sample_size} sequences from {total}"
        )
    sample_size = min(sample_size, total)
    select_all = sample_size == total
    rng = rng or np.random.default_rng()
    m = matrix.size
    c_ext = extended_matrix(matrix.array)
    totals = np.zeros(m, dtype=np.float64)
    chosen_ids: List[int] = []
    chosen_rows: List[np.ndarray] = []
    seen = 0
    for chunk in iter_chunks(database):
        gathered = gather_chunk(c_ext, pad_chunk(chunk.rows, m))
        maxima = chunk_symbol_maxima(gathered)
        for offset, (sid, seq) in enumerate(zip(chunk.ids, chunk.rows)):
            totals += maxima[:, offset]
            needed = sample_size - len(chosen_rows)
            if needed > 0 and (
                select_all or rng.random() < needed / (total - seen)
            ):
                chosen_ids.append(sid)
                chosen_rows.append(np.array(seq, copy=True))
            seen += 1
    sample = SequenceDatabase(chosen_rows, ids=chosen_ids)
    return totals / total, sample
