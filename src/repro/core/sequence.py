"""Sequence databases with scan accounting.

The paper's cost model is *number of passes over a disk-resident
sequence database*.  All database implementations here expose the same
interface and count every full pass through :meth:`SequenceDatabase.scan`,
so mining algorithms can be compared on the paper's own metric
(Figure 14(b), Figure 15(a)) without real disks.

* :class:`SequenceDatabase` keeps the sequences in memory (as numpy
  ``int32`` arrays) — convenient for tests and small experiments.
* :class:`FileSequenceDatabase` stores one encoded sequence per line in
  a text file and re-reads the file on every scan — a faithful
  simulation of disk residency where only O(1) sequences are in memory
  at a time.
* :class:`repro.io.PackedSequenceStore` (in :mod:`repro.io`) keeps the
  symbols in one contiguous memory-mapped ``int32`` buffer and delivers
  zero-copy row views — the disk-resident backend whose scan layer is
  fast enough that match arithmetic, not decoding, dominates a pass.

Scans come in two granularities.  :meth:`~SequenceDatabase.scan` yields
one ``(id, sequence)`` pair at a time; :meth:`~SequenceDatabase.scan_chunks`
yields :class:`SequenceChunk` blocks of up to ``chunk_rows`` rows so
vectorized consumers can amortise per-row overhead.  Both count exactly
one pass when first iterated, and :func:`iter_chunks` adapts any backend
to the chunked form.

Sampling follows Algorithm 4.1 (lines 12-16): a single sequential pass
selects each sequence ``i`` with probability ``(n - j) / (N - i)`` given
``j`` already chosen, which yields a uniform random sample of exactly
``n`` sequences — the classical sequential sampling scheme the paper
cites from Vitter.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SamplingError, SequenceDatabaseError
from .alphabet import Alphabet

SequenceLike = Union[Sequence[int], np.ndarray]

#: Default number of rows per block yielded by ``scan_chunks``.  Matches
#: the vectorized engine's default chunk size so the two layers tile the
#: database identically.
DEFAULT_SCAN_CHUNK_ROWS = 256


class SequenceChunk:
    """One block of rows from a chunked database scan.

    ``rows`` are numpy ``int32`` arrays — zero-copy views into the
    backing buffer when the backend supports it (the packed store) and
    freshly parsed arrays otherwise.  ``ids`` aligns with ``rows``.
    """

    __slots__ = ("ids", "rows")

    def __init__(self, ids: Sequence[int], rows: Sequence[np.ndarray]):
        self.ids = ids
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def nbytes(self) -> int:
        """Payload bytes delivered by this chunk (symbol data only)."""
        return int(sum(row.nbytes for row in self.rows))

    def __repr__(self) -> str:
        return f"SequenceChunk(rows={len(self.rows)}, nbytes={self.nbytes})"


def iter_chunks(
    database,
    chunk_rows: int = DEFAULT_SCAN_CHUNK_ROWS,
) -> Iterator[SequenceChunk]:
    """Stream *database* as :class:`SequenceChunk` blocks; one pass.

    Dispatches to the backend's native :meth:`scan_chunks` when present
    (all shipped backends have one); otherwise buffers the per-row
    :meth:`scan` stream into blocks.  Either way exactly one scan is
    counted, and concatenating ``chunk.rows`` across chunks reproduces
    the ``scan()`` row stream in order.
    """
    native = getattr(database, "scan_chunks", None)
    if native is not None:
        return native(chunk_rows)
    return _buffered_chunks(database, chunk_rows)


def _buffered_chunks(database, chunk_rows: int) -> Iterator[SequenceChunk]:
    _check_chunk_rows(chunk_rows)
    ids: List[int] = []
    rows: List[np.ndarray] = []
    for sid, seq in database.scan():
        ids.append(sid)
        rows.append(seq)
        if len(rows) >= chunk_rows:
            yield SequenceChunk(ids, rows)
            ids, rows = [], []
    if rows:
        yield SequenceChunk(ids, rows)


def _check_chunk_rows(chunk_rows: int) -> None:
    if chunk_rows < 1:
        raise SequenceDatabaseError(
            f"chunk_rows must be >= 1, got {chunk_rows}"
        )


def _sampling_rng(
    rng: Optional[np.random.Generator], seed: Optional[int]
) -> np.random.Generator:
    """Resolve the sampling RNG from an explicit generator or a seed.

    All database backends route through this helper so that the same
    ``seed`` draws the same random stream — and therefore, given equal
    scan order, selects the same sequence ids — regardless of backend.
    """
    if rng is not None and seed is not None:
        raise SamplingError(
            "pass either rng or seed, not both: an explicit generator "
            "already fixes the random stream"
        )
    if seed is not None:
        return np.random.default_rng(seed)
    return rng or np.random.default_rng()


def as_sequence_array(sequence: SequenceLike) -> np.ndarray:
    """Coerce a symbol-index sequence to a 1-D ``int32`` numpy array."""
    array = np.asarray(sequence, dtype=np.int32)
    if array.ndim != 1:
        raise SequenceDatabaseError(
            f"a sequence must be one-dimensional, got shape {array.shape}"
        )
    if array.size == 0:
        raise SequenceDatabaseError("empty sequences are not allowed")
    if np.any(array < 0):
        raise SequenceDatabaseError(
            "sequences contain symbol indices, which must be >= 0"
        )
    return array


class SequenceDatabase:
    """An in-memory database of symbol-index sequences.

    Parameters
    ----------
    sequences:
        Iterable of integer sequences (lists, tuples or numpy arrays).
    ids:
        Optional sequence ids; defaults to ``0 .. N-1``.

    Every call to :meth:`scan` increments :attr:`scan_count` — the number
    of full passes an algorithm has made over the data.
    """

    def __init__(
        self,
        sequences: Iterable[SequenceLike],
        ids: Optional[Sequence[int]] = None,
    ):
        self._sequences: List[np.ndarray] = [
            as_sequence_array(s) for s in sequences
        ]
        if not self._sequences:
            raise SequenceDatabaseError("a database needs at least one sequence")
        if ids is None:
            self._ids = list(range(len(self._sequences)))
        else:
            self._ids = [int(i) for i in ids]
            if len(self._ids) != len(self._sequences):
                raise SequenceDatabaseError(
                    f"{len(self._ids)} ids for {len(self._sequences)} sequences"
                )
            if len(set(self._ids)) != len(self._ids):
                raise SequenceDatabaseError("sequence ids must be unique")
        self._scan_count = 0
        # Catalog metadata, computed once: recomputing total_symbols /
        # max_symbol per call was O(N) and showed up in tight loops.
        self._total_symbols = int(sum(len(s) for s in self._sequences))
        self._max_symbol = int(max(int(s.max()) for s in self._sequences))

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_strings(
        cls, rows: Iterable[Iterable[str]], alphabet: Alphabet
    ) -> "SequenceDatabase":
        """Encode rows of symbol names through *alphabet*.

        >>> ab = Alphabet.numbered(3)
        >>> db = SequenceDatabase.from_strings([["d1", "d2"], ["d3"]], ab)
        >>> len(db)
        2
        """
        return cls(alphabet.encode(row) for row in rows)

    # -- scan accounting --------------------------------------------------------

    @property
    def scan_count(self) -> int:
        """Number of full passes made over the database so far."""
        return self._scan_count

    def reset_scan_count(self) -> None:
        """Zero the pass counter (e.g. between benchmark repetitions)."""
        self._scan_count = 0

    def scan(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(sequence_id, sequence)`` pairs; counts as one pass."""
        self._scan_count += 1
        for sid, seq in zip(self._ids, self._sequences):
            yield sid, seq

    def scan_chunks(
        self, chunk_rows: int = DEFAULT_SCAN_CHUNK_ROWS
    ) -> Iterator[SequenceChunk]:
        """Yield :class:`SequenceChunk` blocks of rows; counts as one pass.

        The concatenation of ``chunk.rows`` across all chunks equals the
        :meth:`scan` row stream, in order.
        """
        _check_chunk_rows(chunk_rows)
        self._scan_count += 1
        for start in range(0, len(self._sequences), chunk_rows):
            stop = start + chunk_rows
            yield SequenceChunk(
                self._ids[start:stop], self._sequences[start:stop]
            )

    # -- metadata -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sequences)

    @property
    def ids(self) -> Tuple[int, ...]:
        return tuple(self._ids)

    def sequence(self, sequence_id: int) -> np.ndarray:
        """Fetch one sequence by id (not counted as a scan)."""
        try:
            index = self._ids.index(sequence_id)
        except ValueError:
            raise SequenceDatabaseError(
                f"no sequence with id {sequence_id}"
            ) from None
        return self._sequences[index]

    def total_symbols(self) -> int:
        """Total number of symbol occurrences across all sequences."""
        return self._total_symbols

    def average_length(self) -> float:
        """The paper's ``l̄_S``: mean sequence length."""
        return self._total_symbols / len(self)

    def max_symbol(self) -> int:
        """Largest symbol index present (useful to size matrices)."""
        return self._max_symbol

    # -- sampling -----------------------------------------------------------

    def sample(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> "SequenceDatabase":
        """Draw a uniform sample of *n* sequences in one sequential pass.

        Implements Algorithm 4.1 lines 12-16: sequence ``i`` is chosen
        with probability ``(n - j) / (N - i)`` where ``j`` sequences were
        already chosen among the first ``i``.  The pass is counted via
        :attr:`scan_count` because the paper folds sampling into the
        Phase-1 scan.

        ``n >= len(self)`` is clamped to the database size: the sample
        is the whole database, selected deterministically in scan order
        without consuming the random stream (no draw can fail, so no
        draw is made).  ``n < 1`` is rejected.

        An explicit *seed* makes the draw deterministic: the same seed
        selects the same sequence ids from the same database, on this
        backend and on :class:`FileSequenceDatabase` alike.  *rng* and
        *seed* are mutually exclusive.
        """
        selected = list(self._select_sample(n, _sampling_rng(rng, seed)))
        return SequenceDatabase(
            [seq for _sid, seq in selected],
            ids=[sid for sid, _seq in selected],
        )

    def _select_sample(
        self, n: int, rng: np.random.Generator
    ) -> Iterator[Tuple[int, np.ndarray]]:
        total = len(self)
        if n < 1:
            raise SamplingError(
                f"cannot sample {n} sequences from a database of {total}"
            )
        n = min(n, total)
        if n == total:
            # The whole database: every draw would succeed with
            # probability exactly 1, so skip the random stream entirely
            # and yield deterministically in scan order.
            yield from self.scan()
            return
        chosen = 0
        for seen, (sid, seq) in enumerate(self.scan()):
            remaining_needed = n - chosen
            remaining_rows = total - seen
            if remaining_needed == 0:
                break
            if rng.random() < remaining_needed / remaining_rows:
                chosen += 1
                yield sid, seq

    # -- persistence -----------------------------------------------------------

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write the database in the one-sequence-per-line text format."""
        with open(path, "w", encoding="ascii") as handle:
            for sid, seq in zip(self._ids, self._sequences):
                symbols = " ".join(str(int(v)) for v in seq)
                handle.write(f"{sid}\t{symbols}\n")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "SequenceDatabase":
        """Read a database written by :meth:`save` fully into memory."""
        ids: List[int] = []
        rows: List[np.ndarray] = []
        for sid, seq in _read_sequence_file(path):
            ids.append(sid)
            rows.append(seq)
        if not rows:
            raise SequenceDatabaseError(f"{path} contains no sequences")
        return cls(rows, ids=ids)

    def __repr__(self) -> str:
        return (
            f"SequenceDatabase(N={len(self)}, "
            f"avg_len={self.average_length():.1f}, scans={self._scan_count})"
        )


class FileSequenceDatabase:
    """A disk-resident database: one encoded sequence per line of a file.

    The file format matches :meth:`SequenceDatabase.save`:
    ``<id> TAB <space-separated symbol indices>``.  Every :meth:`scan`
    re-reads the file from the start; only the current sequence is held
    in memory, simulating the paper's disk-resident assumption.

    The lifetime attributes :attr:`io_bytes_read`, :attr:`io_chunks` and
    :attr:`io_chunk_seconds` account for payload bytes decoded, chunks
    delivered and time spent inside the scan layer (excluding consumer
    time); the obs layer snapshots them into per-run reports.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self._path = os.fspath(path)
        if not os.path.exists(self._path):
            raise SequenceDatabaseError(f"no such sequence file: {self._path}")
        self._scan_count = 0
        self.io_bytes_read = 0
        self.io_chunks = 0
        self.io_chunk_seconds = 0.0
        # One up-front pass (not counted) to learn N and validate format,
        # mirroring how a real system would hold catalog metadata.  The
        # same pass caches total/max symbol so metadata stays O(1).
        length = 0
        total = 0
        max_symbol = -1
        for _sid, seq in _read_sequence_file(self._path):
            length += 1
            total += seq.size
            top = int(seq.max())
            if top > max_symbol:
                max_symbol = top
        self._length = length
        if self._length == 0:
            raise SequenceDatabaseError(f"{self._path} contains no sequences")
        self._total_symbols = total
        self._max_symbol = max_symbol

    @property
    def path(self) -> str:
        return self._path

    @property
    def scan_count(self) -> int:
        return self._scan_count

    def reset_scan_count(self) -> None:
        self._scan_count = 0

    def __len__(self) -> int:
        return self._length

    def total_symbols(self) -> int:
        """Total number of symbol occurrences (cached at construction)."""
        return self._total_symbols

    def average_length(self) -> float:
        """The paper's ``l̄_S``: mean sequence length."""
        return self._total_symbols / self._length

    def max_symbol(self) -> int:
        """Largest symbol index present (cached at construction)."""
        return self._max_symbol

    def scan(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Stream ``(sequence_id, sequence)`` pairs from disk; one pass."""
        self._scan_count += 1
        for sid, seq in _read_sequence_file(self._path):
            self.io_bytes_read += seq.nbytes
            yield sid, seq

    def scan_chunks(
        self, chunk_rows: int = DEFAULT_SCAN_CHUNK_ROWS
    ) -> Iterator[SequenceChunk]:
        """Stream :class:`SequenceChunk` blocks from disk; one pass.

        Rows are parsed into fresh arrays and buffered ``chunk_rows`` at
        a time; time spent while the consumer holds a yielded chunk is
        *not* charged to :attr:`io_chunk_seconds`.
        """
        _check_chunk_rows(chunk_rows)
        self._scan_count += 1
        started = perf_counter()
        ids: List[int] = []
        rows: List[np.ndarray] = []
        for sid, seq in _read_sequence_file(self._path):
            ids.append(sid)
            rows.append(seq)
            if len(rows) >= chunk_rows:
                chunk = SequenceChunk(ids, rows)
                self.io_chunks += 1
                self.io_bytes_read += chunk.nbytes
                self.io_chunk_seconds += perf_counter() - started
                yield chunk
                ids, rows = [], []
                started = perf_counter()
        if rows:
            chunk = SequenceChunk(ids, rows)
            self.io_chunks += 1
            self.io_bytes_read += chunk.nbytes
            self.io_chunk_seconds += perf_counter() - started
            yield chunk

    def sample(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> SequenceDatabase:
        """Sequential uniform sampling (Algorithm 4.1); returns an
        in-memory database, as the sample is what Phase 2 mines.

        The same explicit *seed* selects the same sequence ids as
        :meth:`SequenceDatabase.sample` would on the in-memory copy of
        this file (both backends draw the identical random stream in
        the identical scan order).  ``n >= len(self)`` is clamped to
        the database size, matching the in-memory backend: the whole
        file is selected in scan order without consuming the random
        stream.
        """
        total = len(self)
        if n < 1:
            raise SamplingError(
                f"cannot sample {n} sequences from a database of {total}"
            )
        n = min(n, total)
        rng = _sampling_rng(rng, seed)
        ids: List[int] = []
        rows: List[np.ndarray] = []
        if n == total:
            for sid, seq in self.scan():
                ids.append(sid)
                rows.append(seq)
            return SequenceDatabase(rows, ids=ids)
        chosen = 0
        for seen, (sid, seq) in enumerate(self.scan()):
            if chosen == n:
                break
            if rng.random() < (n - chosen) / (total - seen):
                ids.append(sid)
                rows.append(seq)
                chosen += 1
        return SequenceDatabase(rows, ids=ids)

    def materialize(self) -> SequenceDatabase:
        """Load the entire file into an in-memory database (one pass)."""
        self._scan_count += 1
        return SequenceDatabase.load(self._path)

    def __repr__(self) -> str:
        return (
            f"FileSequenceDatabase({self._path!r}, N={self._length}, "
            f"scans={self._scan_count})"
        )


#: Any object honouring the scan contract: ``__len__``, ``scan()``,
#: ``scan_chunks()``, ``scan_count``/``reset_scan_count`` and ``sample``.
#: ``repro.io.PackedSequenceStore`` satisfies it too; the alias keeps the
#: two core backends for annotation purposes without importing
#: :mod:`repro.io` (which depends on this module).
AnySequenceDatabase = Union[SequenceDatabase, FileSequenceDatabase]


def _read_sequence_file(
    path: Union[str, os.PathLike]
) -> Iterator[Tuple[int, np.ndarray]]:
    with open(path, "r", encoding="ascii") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                sid_text, _, body = line.partition("\t")
                sid = int(sid_text)
                seq = np.array(body.split(), dtype=np.int32)
            except ValueError as exc:
                raise SequenceDatabaseError(
                    f"{path}:{line_no}: malformed sequence line"
                ) from exc
            if seq.size == 0:
                raise SequenceDatabaseError(
                    f"{path}:{line_no}: empty sequence"
                )
            yield sid, seq
