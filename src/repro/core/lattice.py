"""Navigation of the sub-/super-pattern lattice.

This module contains the combinatorial machinery shared by the miners:

* Apriori candidate generation by rightward extension (complete, since
  every ``(k+1)``-pattern extends its unique prefix ``k``-subpattern);
* immediate super-pattern enumeration (left/right extension and
  wildcard filling), used by look-ahead mining and border validation;
* halfway-pattern generation between two comparable patterns
  (Algorithm 4.4), the primitive of border collapsing.

Enumeration is bounded by a :class:`PatternConstraints` value object:
``max_weight`` (non-``*`` symbols), ``max_span`` (total length) and
``max_gap`` (longest run of consecutive wildcards).  The paper bounds
pattern length implicitly ("mining the obscure patterns of length l");
making the bounds explicit keeps the search space finite and lets the
benchmarks dial difficulty.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from ..errors import MiningError
from ..obs import CANDIDATE_GEN_SECONDS, LATTICE_CANDIDATES, Tracer
from .pattern import Pattern, WILDCARD


@dataclass(frozen=True)
class PatternConstraints:
    """Structural bounds for candidate enumeration.

    Attributes
    ----------
    max_weight:
        Maximum number of non-eternal symbols in a pattern.
    max_span:
        Maximum total pattern length including wildcards.  Must be at
        least ``max_weight``.
    max_gap:
        Maximum run of consecutive wildcards allowed between two
        symbols.  ``0`` restricts mining to contiguous patterns.
    """

    max_weight: int = 10
    max_span: int = 12
    max_gap: int = 1

    def __post_init__(self) -> None:
        if self.max_weight < 1:
            raise MiningError(f"max_weight must be >= 1, got {self.max_weight}")
        if self.max_span < self.max_weight:
            raise MiningError(
                f"max_span ({self.max_span}) must be >= max_weight "
                f"({self.max_weight})"
            )
        if self.max_gap < 0:
            raise MiningError(f"max_gap must be >= 0, got {self.max_gap}")

    def admits(self, pattern: Pattern) -> bool:
        """True when *pattern* satisfies every bound."""
        return (
            pattern.weight <= self.max_weight
            and pattern.span <= self.max_span
            and pattern.max_gap() <= self.max_gap
        )


def extend_right(
    pattern: Pattern,
    symbols: Iterable[int],
    constraints: PatternConstraints,
) -> Iterator[Pattern]:
    """All one-symbol rightward extensions of *pattern* within bounds.

    For every allowed gap length ``g`` (``0 .. max_gap``) and every
    symbol ``d``, yields ``pattern · *^g · d``.
    """
    if pattern.weight + 1 > constraints.max_weight:
        return
    symbols = list(symbols)
    base = list(pattern.elements)
    for gap in range(constraints.max_gap + 1):
        span = pattern.span + gap + 1
        if span > constraints.max_span:
            break
        tail = [WILDCARD] * gap
        for symbol in symbols:
            yield Pattern(base + tail + [symbol])


def reference_generate_candidates(
    frequent: Set[Pattern],
    frequent_symbols: Sequence[int],
    constraints: PatternConstraints,
) -> Set[Pattern]:
    """The pure-Python Apriori join + prune (differential baseline).

    Kept verbatim as the semantic reference for the packed kernel in
    :mod:`repro.core.latticekernels`; production call sites go through
    :func:`generate_candidates`, which dispatches on the lattice mode.
    """
    if not frequent:
        return set()
    candidates: Set[Pattern] = set()
    for pattern in frequent:
        for extended in extend_right(pattern, frequent_symbols, constraints):
            if extended in candidates:
                continue
            if all(
                sub in frequent
                for sub in extended.immediate_subpatterns()
                if constraints.admits(sub)
            ):
                candidates.add(extended)
    return candidates


def generate_candidates(
    frequent: Set[Pattern],
    frequent_symbols: Sequence[int],
    constraints: PatternConstraints,
    lattice: Optional[str] = None,
    tracer: Optional[Tracer] = None,
) -> Set[Pattern]:
    """Apriori join + prune for the next lattice level.

    Given the frequent ``k``-patterns, produce the candidate
    ``(k+1)``-patterns: rightward extensions whose **every** immediate
    ``k``-subpattern *inside the constrained lattice* is frequent.
    Subpatterns that violate the constraints (e.g. a gapped subpattern
    of a contiguous candidate when ``max_gap = 0``) are outside the
    search space and impose no requirement.  For ``k = 1`` the frequent
    set is the 1-patterns over *frequent_symbols*.

    *lattice* picks the execution path (``"kernel"`` — the packed
    batch kernel, the default — or ``"reference"``; ``None`` defers to
    the ``NOISYMINE_LATTICE`` environment variable).  Both produce the
    same set for any input.  When *tracer* is enabled, the candidate
    count and generation time land on the ``lattice_candidates`` /
    ``candidate_gen_seconds`` counters and the per-level counts on the
    run-level ``lattice_candidates_per_level`` note.
    """
    from .latticekernels import kernel_generate_candidates, use_kernels

    timed = tracer is not None and tracer.enabled
    started = time.perf_counter() if timed else 0.0
    if use_kernels(lattice):
        candidates = kernel_generate_candidates(
            frequent, frequent_symbols, constraints
        )
    else:
        candidates = reference_generate_candidates(
            frequent, frequent_symbols, constraints
        )
    if timed:
        tracer.count(LATTICE_CANDIDATES, len(candidates))
        tracer.count(CANDIDATE_GEN_SECONDS,
                     time.perf_counter() - started)
        per_level = tracer.root.notes.setdefault(
            "lattice_candidates_per_level", []
        )
        per_level.append(len(candidates))
    return candidates


def level_one_patterns(frequent_symbols: Iterable[int]) -> Set[Pattern]:
    """The 1-patterns for a set of frequent symbol indices."""
    return {Pattern.single(symbol) for symbol in frequent_symbols}


def immediate_superpatterns(
    pattern: Pattern,
    symbols: Sequence[int],
    constraints: PatternConstraints,
) -> Set[Pattern]:
    """All ``(k+1)``-weight super-patterns of *pattern* within bounds.

    Three moves add one symbol: append on the right (with a gap),
    prepend on the left (with a gap), or fill one existing wildcard.
    """
    result: Set[Pattern] = set()
    if pattern.weight + 1 > constraints.max_weight:
        return result
    elements = list(pattern.elements)
    # Fill an interior wildcard.
    for position, element in enumerate(elements):
        if element != WILDCARD:
            continue
        for symbol in symbols:
            filled = list(elements)
            filled[position] = symbol
            candidate = Pattern(filled)
            if constraints.admits(candidate):
                result.add(candidate)
    # Extend on the right / left.
    for gap in range(constraints.max_gap + 1):
        if pattern.span + gap + 1 > constraints.max_span:
            break
        pad = [WILDCARD] * gap
        for symbol in symbols:
            right = Pattern(elements + pad + [symbol])
            if constraints.admits(right):
                result.add(right)
            left = Pattern([symbol] + pad + elements)
            if constraints.admits(left):
                result.add(left)
    return result


def embeddings(inner: Pattern, outer: Pattern) -> List[int]:
    """All alignment offsets at which *inner* embeds into *outer*.

    An offset ``j`` is valid when every element of *inner* is ``*`` or
    equals the element of *outer* at the shifted position
    (Definition 3.3).
    """
    offsets: List[int] = []
    mine, theirs = inner.elements, outer.elements
    if len(mine) > len(theirs):
        return offsets
    for j in range(len(theirs) - len(mine) + 1):
        if all(
            e == WILDCARD or e == theirs[i + j] for i, e in enumerate(mine)
        ):
            offsets.append(j)
    return offsets


def iter_patterns_between(
    lower: Pattern, upper: Pattern, weight: int
) -> Iterator[Pattern]:
    """Yield the distinct *weight*-patterns ``P`` with
    ``lower ⊑ P ⊑ upper``.

    Every subpattern of *upper* is a projection onto a subset of its
    fixed positions; this iterates the subsets of the requested size and
    keeps those whose projection still contains *lower*.
    """
    if weight < lower.weight or weight > upper.weight:
        return
    if not lower.is_subpattern_of(upper):
        return
    fixed = [position for position, _symbol in upper.fixed_positions]
    seen: Set[Pattern] = set()
    for chosen in combinations(fixed, weight):
        candidate = upper.project(chosen)
        if candidate in seen:
            continue
        seen.add(candidate)
        if lower.is_subpattern_of(candidate):
            yield candidate


def halfway_weight(lower: Pattern, upper: Pattern) -> int:
    """The halfway level ``ceil((k1 + k2) / 2)`` of Algorithm 4.4."""
    return -(-(lower.weight + upper.weight) // 2)


def halfway_patterns(
    lower_layer: Iterable[Pattern],
    upper_layer: Iterable[Pattern],
    limit: Optional[int] = None,
) -> Set[Pattern]:
    """Algorithm 4.4: halfway patterns between two layers.

    For every comparable pair ``(P1, P2)`` with ``P1 ⊑ P2``, generates
    the patterns of weight ``ceil((w1 + w2) / 2)`` lying between them.
    When *limit* is given, stops after collecting that many patterns
    (the memory-capacity cut-off of Algorithm 4.3).
    """
    result: Set[Pattern] = set()
    uppers = list(upper_layer)
    for lower in lower_layer:
        for upper in uppers:
            if not lower.is_subpattern_of(upper):
                continue
            target = halfway_weight(lower, upper)
            for pattern in iter_patterns_between(lower, upper, target):
                result.add(pattern)
                if limit is not None and len(result) >= limit:
                    return result
    return result


def patterns_at_weight(
    border_elements: Iterable[Pattern], weight: int
) -> Set[Pattern]:
    """All *weight*-subpatterns of any of the given patterns.

    Used to slice the downward closure of a border at one lattice level.
    """
    result: Set[Pattern] = set()
    for element in border_elements:
        result |= element.subpatterns_of_weight(weight)
    return result
