"""Sequential patterns with don't-care positions.

A pattern (Definition 3.2 of the paper) is an ordered list of elements,
each of which is either a symbol of the alphabet or the *eternal symbol*
``*`` which matches any single observed symbol.  Internally symbols are
integer indices and the eternal symbol is the sentinel :data:`WILDCARD`.

Two structural rules from the paper are enforced:

* neither the first nor the last element of a pattern may be ``*``
  (patterns with dangling wildcards are trivial duplicates);
* a pattern contains at least one non-eternal symbol.

The *weight* of a pattern is its number of non-eternal symbols (the
paper's "k" in "k-pattern"); the *span* is its total length including
wildcards (the paper's "l").
"""

from __future__ import annotations

import re
from itertools import combinations
from typing import Iterable, Iterator, Optional, Sequence, Set, Tuple

from ..errors import PatternError
from .alphabet import Alphabet

#: Sentinel used for the eternal (don't care) symbol ``*``.
WILDCARD: int = -1


class Pattern:
    """An immutable sequential pattern over integer symbol indices.

    Parameters
    ----------
    elements:
        Iterable of integers; each element is a symbol index (``>= 0``)
        or :data:`WILDCARD`.

    Examples
    --------
    >>> p = Pattern([0, WILDCARD, 2])
    >>> p.span, p.weight
    (3, 2)
    >>> str(p)
    '<0 * 2>'
    """

    __slots__ = ("_elements", "_hash", "_weight", "_sig")

    def __init__(self, elements: Iterable[int]):
        elems = tuple(int(e) for e in elements)
        if not elems:
            raise PatternError("a pattern must contain at least one symbol")
        if elems[0] == WILDCARD or elems[-1] == WILDCARD:
            raise PatternError(
                "neither the first nor the last element of a pattern may be "
                f"the eternal symbol '*': {elems}"
            )
        for e in elems:
            if e < WILDCARD:
                raise PatternError(
                    "pattern elements must be symbol indices >= 0 or "
                    f"WILDCARD (-1), got {e}"
                )
        self._elements = elems
        self._hash = hash(elems)
        self._weight = len(elems) - elems.count(WILDCARD)
        self._sig: Optional[int] = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def single(cls, symbol: int) -> "Pattern":
        """The 1-pattern consisting of a single symbol index."""
        return cls((symbol,))

    @classmethod
    def from_symbols(cls, symbols: Iterable[str], alphabet: Alphabet) -> "Pattern":
        """Build a pattern from symbol names, with ``"*"`` as wildcard.

        >>> ab = Alphabet.numbered(5)
        >>> Pattern.from_symbols(["d1", "*", "d3"], ab).span
        3
        """
        elems = [
            WILDCARD if s == "*" else alphabet.index(s) for s in symbols
        ]
        return cls(elems)

    @classmethod
    def parse(cls, text: str, alphabet: Alphabet) -> "Pattern":
        """Parse a whitespace-separated pattern string, e.g. ``"d1 * d3"``."""
        tokens = text.split()
        if not tokens:
            raise PatternError("cannot parse an empty pattern string")
        return cls.from_symbols(tokens, alphabet)

    # -- basic properties --------------------------------------------------

    @property
    def elements(self) -> Tuple[int, ...]:
        """The raw element tuple (symbol indices and :data:`WILDCARD`)."""
        return self._elements

    @property
    def span(self) -> int:
        """Total pattern length *l*, wildcards included."""
        return len(self._elements)

    @property
    def weight(self) -> int:
        """Number of non-eternal symbols *k* (the paper's "k-pattern")."""
        return self._weight

    def signature64(self) -> int:
        """A 64-bit symbol-presence bitmask (bit ``symbol & 63``).

        The signature is a necessary-condition filter for subsumption:
        ``P.is_subpattern_of(Q)`` requires every symbol of ``P`` to occur
        in ``Q``, hence ``P.signature64() & ~Q.signature64() == 0`` (the
        converse does not hold — the mask folds the alphabet mod 64 and
        ignores positions).  Computed lazily and cached; the mask itself
        is a plain Python int so callers can combine it bit-wise without
        numpy round trips.
        """
        sig = self._sig
        if sig is None:
            sig = 0
            for e in self._elements:
                if e != WILDCARD:
                    sig |= 1 << (e & 63)
            self._sig = sig
        return sig

    @property
    def symbol_set(self) -> Set[int]:
        """The set of distinct non-eternal symbol indices in the pattern."""
        return {e for e in self._elements if e != WILDCARD}

    @property
    def fixed_positions(self) -> Tuple[Tuple[int, int], ...]:
        """``(offset, symbol)`` pairs for every non-eternal position."""
        return tuple(
            (i, e) for i, e in enumerate(self._elements) if e != WILDCARD
        )

    def max_gap(self) -> int:
        """Length of the longest run of consecutive wildcards."""
        longest = run = 0
        for e in self._elements:
            if e == WILDCARD:
                run += 1
                longest = max(longest, run)
            else:
                run = 0
        return longest

    # -- lattice relations --------------------------------------------------

    def is_subpattern_of(self, other: "Pattern") -> bool:
        """Definition 3.3: ``self`` is a subpattern of ``other``.

        True iff there is an alignment offset ``j`` such that every
        element of ``self`` is either ``*`` or equal to the element of
        ``other`` at the shifted position.
        """
        mine, theirs = self._elements, other._elements
        if len(mine) > len(theirs):
            return False
        for j in range(len(theirs) - len(mine) + 1):
            if all(
                e == WILDCARD or e == theirs[i + j]
                for i, e in enumerate(mine)
            ):
                return True
        return False

    def is_superpattern_of(self, other: "Pattern") -> bool:
        """Definition 3.3, reversed: ``other`` is a subpattern of ``self``."""
        return other.is_subpattern_of(self)

    def immediate_subpatterns(self) -> Set["Pattern"]:
        """All patterns obtained by dropping exactly one non-``*`` symbol.

        Dropping an interior symbol replaces it with ``*``; dropping the
        first or last symbol also strips the adjacent wildcard run so the
        result again starts and ends with a symbol.  A 1-pattern has no
        subpatterns (the empty pattern is not part of the model).
        """
        result: Set[Pattern] = set()
        if self.weight <= 1:
            return result
        elems = self._elements
        for pos, _symbol in self.fixed_positions:
            remaining = list(elems)
            remaining[pos] = WILDCARD
            # Trim any wildcard prefix/suffix created by the removal.
            start = 0
            while remaining[start] == WILDCARD:
                start += 1
            end = len(remaining)
            while remaining[end - 1] == WILDCARD:
                end -= 1
            result.add(Pattern(remaining[start:end]))
        return result

    def subpatterns_of_weight(self, weight: int) -> Set["Pattern"]:
        """All subpatterns of ``self`` with exactly *weight* symbols.

        Every subpattern of a pattern corresponds to a choice of a subset
        of its fixed positions (keeping their symbols and relative
        spacing); this enumerates the :math:`\\binom{k}{weight}` choices.
        """
        if weight < 1 or weight > self.weight:
            return set()
        fixed = self.fixed_positions
        result: Set[Pattern] = set()
        for chosen in combinations(fixed, weight):
            result.add(_pattern_from_fixed(chosen))
        return result

    def project(self, positions: Sequence[int]) -> "Pattern":
        """The subpattern keeping only the given absolute *positions*.

        Positions must refer to non-wildcard elements of ``self``.
        """
        chosen = sorted(set(int(p) for p in positions))
        if not chosen:
            raise PatternError("projection needs at least one position")
        fixed = []
        for p in chosen:
            if not 0 <= p < self.span:
                raise PatternError(f"position {p} out of range for {self}")
            if self._elements[p] == WILDCARD:
                raise PatternError(
                    f"cannot project onto wildcard position {p} of {self}"
                )
            fixed.append((p, self._elements[p]))
        return _pattern_from_fixed(tuple(fixed))

    # -- dunder -------------------------------------------------------------

    def to_string(self, alphabet: Optional[Alphabet] = None) -> str:
        """Human-readable rendering, with symbol names when given."""
        if alphabet is None:
            parts = ["*" if e == WILDCARD else str(e) for e in self._elements]
        else:
            parts = [
                "*" if e == WILDCARD else alphabet.symbol(e)
                for e in self._elements
            ]
        return " ".join(parts)

    def to_regex(self, alphabet: Alphabet) -> str:
        """Regular-expression rendering of the pattern.

        The paper notes the eternal symbol "is equivalent to the symbol
        '.' used in regular expression"; this emits exactly that, so a
        pattern can be grepped against raw symbol text.  Consecutive
        wildcards compress to ``.{n}`` and symbol names longer than one
        character are wrapped in a non-capturing group.

        >>> from repro.core.alphabet import Alphabet
        >>> ab = Alphabet.amino_acids()
        >>> Pattern.parse("C * * C H", ab).to_regex(ab)
        'C.{2}CH'
        """
        parts: List[str] = []
        run = 0
        for element in self._elements:
            if element == WILDCARD:
                run += 1
                continue
            if run:
                parts.append("." if run == 1 else f".{{{run}}}")
                run = 0
            name = alphabet.symbol(element)
            if len(name) == 1 and name.isalnum():
                parts.append(name)
            else:
                parts.append(f"(?:{re.escape(name)})")
        return "".join(parts)

    def __iter__(self) -> Iterator[int]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __getitem__(self, index: int) -> int:
        return self._elements[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._elements == other._elements

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Pattern") -> bool:
        # A stable total order (weight, then span, then elements) so that
        # pattern collections sort deterministically in reports and tests.
        if not isinstance(other, Pattern):
            return NotImplemented
        return (self.weight, self.span, self._elements) < (
            other.weight,
            other.span,
            other._elements,
        )

    def __repr__(self) -> str:
        return f"Pattern({self.to_string()!r})"

    def __str__(self) -> str:
        inner = " ".join(
            "*" if e == WILDCARD else str(e) for e in self._elements
        )
        return f"<{inner}>"


def _pattern_from_fixed(fixed: Tuple[Tuple[int, int], ...]) -> Pattern:
    """Build a pattern from ``(absolute position, symbol)`` pairs.

    The result spans from the first to the last chosen position, with
    wildcards in between, preserving the relative spacing.
    """
    first = fixed[0][0]
    last = fixed[-1][0]
    elems = [WILDCARD] * (last - first + 1)
    for pos, symbol in fixed:
        elems[pos - first] = symbol
    return Pattern(elems)
