"""Borders of pattern collections (Mannila & Toivonen's notion).

The Apriori property makes the set of frequent patterns *downward
closed* in the sub-pattern lattice, so it is fully described by its
**border**: the antichain of maximal elements.  The paper uses two such
borders, FQT (frequent / ambiguous boundary) and INFQT (ambiguous /
infrequent boundary), and Phase 3 collapses the gap between them.

:class:`Border` maintains a maximal antichain: adding a pattern that is
already covered is a no-op, and adding a new maximal pattern evicts any
member it dominates.  ``covers(p)`` answers "is ``p`` in the downward
closure?" — i.e. "is ``p`` frequent according to this border?".

In the default ``kernel`` lattice mode (see
:mod:`repro.core.latticekernels`) both the coverage query and the
dominated sweep prefilter each member with its cached 64-bit symbol
signature and span before paying for a positional
``is_subpattern_of`` — an exact filter (a necessary condition for
containment), so results are identical to the reference mode.  A
tracer, when attached, receives the ``subsumption_checks`` /
``subsumption_skipped`` traffic.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Set

from ..obs import SUBSUMPTION_CHECKS, SUBSUMPTION_SKIPPED, Tracer
from .pattern import Pattern


class Border:
    """A maximal antichain describing a downward-closed pattern family.

    Elements are bucketed by weight so coverage queries only test
    border elements at least as heavy as the query pattern (a pattern
    can only be a subpattern of an equal-or-heavier one).

    Parameters
    ----------
    patterns:
        Initial members, added one by one (so the invariant holds from
        the start).
    lattice:
        Lattice mode: ``"kernel"`` enables the signature/span
        prefilter, ``"reference"`` keeps the original scan; ``None``
        defers to the ``NOISYMINE_LATTICE`` environment variable
        (default kernel).  Both modes answer every query identically.
    tracer:
        Optional :class:`repro.obs.Tracer` receiving the subsumption
        counter traffic of the kernel mode.
    """

    __slots__ = ("_elements", "_by_weight", "_use_kernels", "_tracer")

    def __init__(
        self,
        patterns: Iterable[Pattern] = (),
        lattice: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ):
        from .latticekernels import use_kernels

        self._elements: Set[Pattern] = set()
        self._by_weight: dict = {}
        self._use_kernels = use_kernels(lattice)
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        for pattern in patterns:
            self.add(pattern)

    def add(self, pattern: Pattern) -> bool:
        """Insert *pattern*, keeping the antichain maximal.

        Returns ``True`` when the border changed (the pattern was not
        already covered by an existing element).
        """
        if self.covers(pattern):
            return False
        if self._use_kernels:
            dominated = self._dominated_filtered(pattern)
        else:
            dominated = [
                member
                for weight, bucket in self._by_weight.items()
                if weight <= pattern.weight
                for member in bucket
                if member.is_subpattern_of(pattern)
            ]
        for member in dominated:
            self._discard(member)
        self._elements.add(pattern)
        self._by_weight.setdefault(pattern.weight, set()).add(pattern)
        return True

    def _dominated_filtered(self, pattern: Pattern) -> list:
        """The dominated sweep with the signature/span prefilter.

        A member can only be a subpattern of *pattern* if it is no
        longer, no heavier (the bucket test) and uses no symbol absent
        from *pattern* — all checked before the positional scan.
        """
        sig = pattern.signature64()
        span = pattern.span
        checks = skipped = 0
        dominated = []
        for weight, bucket in self._by_weight.items():
            if weight > pattern.weight:
                continue
            for member in bucket:
                if member.span > span or member.signature64() & ~sig:
                    skipped += 1
                    continue
                checks += 1
                if member.is_subpattern_of(pattern):
                    dominated.append(member)
        tracer = self._tracer
        if tracer is not None:
            tracer.count(SUBSUMPTION_CHECKS, checks)
            tracer.count(SUBSUMPTION_SKIPPED, skipped)
        return dominated

    def _discard(self, pattern: Pattern) -> None:
        self._elements.discard(pattern)
        bucket = self._by_weight.get(pattern.weight)
        if bucket is not None:
            bucket.discard(pattern)
            if not bucket:
                del self._by_weight[pattern.weight]

    def covers(self, pattern: Pattern) -> bool:
        """True iff *pattern* lies in the downward closure of the border."""
        if self._use_kernels:
            return self._covers_filtered(pattern)
        weight = pattern.weight
        for member_weight, bucket in self._by_weight.items():
            if member_weight < weight:
                continue
            for member in bucket:
                if pattern.is_subpattern_of(member):
                    return True
        return False

    def _covers_filtered(self, pattern: Pattern) -> bool:
        """Coverage with the signature/span prefilter per member."""
        sig = pattern.signature64()
        span = pattern.span
        weight = pattern.weight
        checks = skipped = 0
        found = False
        for member_weight, bucket in self._by_weight.items():
            if member_weight < weight:
                continue
            for member in bucket:
                if span > member.span or sig & ~member.signature64():
                    skipped += 1
                    continue
                checks += 1
                if pattern.is_subpattern_of(member):
                    found = True
                    break
            if found:
                break
        tracer = self._tracer
        if tracer is not None:
            tracer.count(SUBSUMPTION_CHECKS, checks)
            tracer.count(SUBSUMPTION_SKIPPED, skipped)
        return found

    def update(self, patterns: Iterable[Pattern]) -> None:
        """Add every pattern in *patterns*."""
        for pattern in patterns:
            self.add(pattern)

    def copy(self, tracer: Optional[Tracer] = None) -> "Border":
        """A deep-enough copy (shared immutable members, fresh buckets).

        The clone keeps the lattice mode; *tracer* rebinds the
        observability sink (e.g. Phase 3 copying the Phase-2 FQT border
        wants the counters on its own spans), ``None`` keeps the
        current one.
        """
        clone = Border()
        clone._elements = set(self._elements)
        clone._by_weight = {
            weight: set(bucket)
            for weight, bucket in self._by_weight.items()
        }
        clone._use_kernels = self._use_kernels
        if tracer is not None:
            clone._tracer = tracer if tracer.enabled else None
        else:
            clone._tracer = self._tracer
        return clone

    # -- queries -------------------------------------------------------------

    @property
    def elements(self) -> Set[Pattern]:
        """The border elements (maximal patterns)."""
        return set(self._elements)

    def max_weight(self) -> int:
        """Weight of the heaviest border element (0 for an empty border)."""
        if not self._elements:
            return 0
        return max(p.weight for p in self._elements)

    def downward_closure(self) -> Set[Pattern]:
        """Materialise every pattern covered by the border.

        Exponential in border-element weight; intended for tests and
        small exact computations, not for production mining.
        """
        closure: Set[Pattern] = set()
        frontier = list(self._elements)
        while frontier:
            pattern = frontier.pop()
            if pattern in closure:
                continue
            closure.add(pattern)
            frontier.extend(pattern.immediate_subpatterns())
        return closure

    def level_distance(self, other: "Border") -> float:
        """Average lattice-level gap from this border to *other*.

        For each element of ``self``, the distance to the closest
        (by weight difference) comparable element of *other*; elements
        with no comparable counterpart contribute their own weight.
        Used to reproduce Figure 14(c): how far the final border lies
        from the border estimated on the sample.
        """
        if not self._elements:
            return 0.0
        total = 0.0
        for mine in self._elements:
            gaps = [
                abs(mine.weight - theirs.weight)
                for theirs in other._elements
                if mine.is_subpattern_of(theirs)
                or theirs.is_subpattern_of(mine)
            ]
            total += min(gaps) if gaps else mine.weight
        return total / len(self._elements)

    # -- container protocol ----------------------------------------------------

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, pattern: object) -> bool:
        return pattern in self._elements

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Border):
            return NotImplemented
        return self._elements == other._elements

    def __repr__(self) -> str:
        sample = ", ".join(str(p) for p in sorted(self._elements)[:4])
        suffix = ", ..." if len(self._elements) > 4 else ""
        return f"Border([{sample}{suffix}], size={len(self._elements)})"


def border_from_frequent(frequent: Iterable[Pattern]) -> Border:
    """Build the border of an explicitly enumerated frequent-pattern set."""
    return Border(frequent)
