"""Borders of pattern collections (Mannila & Toivonen's notion).

The Apriori property makes the set of frequent patterns *downward
closed* in the sub-pattern lattice, so it is fully described by its
**border**: the antichain of maximal elements.  The paper uses two such
borders, FQT (frequent / ambiguous boundary) and INFQT (ambiguous /
infrequent boundary), and Phase 3 collapses the gap between them.

:class:`Border` maintains a maximal antichain: adding a pattern that is
already covered is a no-op, and adding a new maximal pattern evicts any
member it dominates.  ``covers(p)`` answers "is ``p`` in the downward
closure?" — i.e. "is ``p`` frequent according to this border?".
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set

from .pattern import Pattern


class Border:
    """A maximal antichain describing a downward-closed pattern family.

    Elements are bucketed by weight so coverage queries only test
    border elements at least as heavy as the query pattern (a pattern
    can only be a subpattern of an equal-or-heavier one).
    """

    __slots__ = ("_elements", "_by_weight")

    def __init__(self, patterns: Iterable[Pattern] = ()):
        self._elements: Set[Pattern] = set()
        self._by_weight: dict = {}
        for pattern in patterns:
            self.add(pattern)

    def add(self, pattern: Pattern) -> bool:
        """Insert *pattern*, keeping the antichain maximal.

        Returns ``True`` when the border changed (the pattern was not
        already covered by an existing element).
        """
        if self.covers(pattern):
            return False
        dominated = [
            member
            for weight, bucket in self._by_weight.items()
            if weight <= pattern.weight
            for member in bucket
            if member.is_subpattern_of(pattern)
        ]
        for member in dominated:
            self._discard(member)
        self._elements.add(pattern)
        self._by_weight.setdefault(pattern.weight, set()).add(pattern)
        return True

    def _discard(self, pattern: Pattern) -> None:
        self._elements.discard(pattern)
        bucket = self._by_weight.get(pattern.weight)
        if bucket is not None:
            bucket.discard(pattern)
            if not bucket:
                del self._by_weight[pattern.weight]

    def covers(self, pattern: Pattern) -> bool:
        """True iff *pattern* lies in the downward closure of the border."""
        weight = pattern.weight
        for member_weight, bucket in self._by_weight.items():
            if member_weight < weight:
                continue
            for member in bucket:
                if pattern.is_subpattern_of(member):
                    return True
        return False

    def update(self, patterns: Iterable[Pattern]) -> None:
        """Add every pattern in *patterns*."""
        for pattern in patterns:
            self.add(pattern)

    def copy(self) -> "Border":
        clone = Border()
        clone._elements = set(self._elements)
        clone._by_weight = {
            weight: set(bucket)
            for weight, bucket in self._by_weight.items()
        }
        return clone

    # -- queries -------------------------------------------------------------

    @property
    def elements(self) -> Set[Pattern]:
        """The border elements (maximal patterns)."""
        return set(self._elements)

    def max_weight(self) -> int:
        """Weight of the heaviest border element (0 for an empty border)."""
        if not self._elements:
            return 0
        return max(p.weight for p in self._elements)

    def downward_closure(self) -> Set[Pattern]:
        """Materialise every pattern covered by the border.

        Exponential in border-element weight; intended for tests and
        small exact computations, not for production mining.
        """
        closure: Set[Pattern] = set()
        frontier = list(self._elements)
        while frontier:
            pattern = frontier.pop()
            if pattern in closure:
                continue
            closure.add(pattern)
            frontier.extend(pattern.immediate_subpatterns())
        return closure

    def level_distance(self, other: "Border") -> float:
        """Average lattice-level gap from this border to *other*.

        For each element of ``self``, the distance to the closest
        (by weight difference) comparable element of *other*; elements
        with no comparable counterpart contribute their own weight.
        Used to reproduce Figure 14(c): how far the final border lies
        from the border estimated on the sample.
        """
        if not self._elements:
            return 0.0
        total = 0.0
        for mine in self._elements:
            gaps = [
                abs(mine.weight - theirs.weight)
                for theirs in other._elements
                if mine.is_subpattern_of(theirs)
                or theirs.is_subpattern_of(mine)
            ]
            total += min(gaps) if gaps else mine.weight
        return total / len(self._elements)

    # -- container protocol ----------------------------------------------------

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, pattern: object) -> bool:
        return pattern in self._elements

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Border):
            return NotImplemented
        return self._elements == other._elements

    def __repr__(self) -> str:
        sample = ", ".join(str(p) for p in sorted(self._elements)[:4])
        suffix = ", ..." if len(self._elements) > 4 else ""
        return f"Border([{sample}{suffix}], size={len(self._elements)})"


def border_from_frequent(frequent: Iterable[Pattern]) -> Border:
    """Build the border of an explicitly enumerated frequent-pattern set."""
    return Border(frequent)
