"""Symbol alphabets.

The mining model works internally on integer symbol indices; an
:class:`Alphabet` provides the bidirectional mapping between
human-readable symbol names (amino-acid letters, event codes, SKU ids,
...) and the dense integer range ``0 .. m-1`` expected by the match
engine and the compatibility matrix.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from ..errors import AlphabetError

#: The 20 standard amino acids, in the conventional alphabetical
#: one-letter-code order used by BLOSUM matrices.
AMINO_ACIDS: Tuple[str, ...] = (
    "A", "R", "N", "D", "C", "Q", "E", "G", "H", "I",
    "L", "K", "M", "F", "P", "S", "T", "W", "Y", "V",
)


class Alphabet:
    """An immutable, ordered set of distinct symbols.

    Parameters
    ----------
    symbols:
        The symbol names, in index order.  Names must be non-empty
        strings, unique, and must not be the reserved wildcard ``"*"``.

    Examples
    --------
    >>> ab = Alphabet(["a", "b", "c"])
    >>> ab.index("b")
    1
    >>> ab.symbol(2)
    'c'
    >>> len(ab)
    3
    """

    __slots__ = ("_symbols", "_index")

    def __init__(self, symbols: Iterable[str]):
        names: List[str] = list(symbols)
        if not names:
            raise AlphabetError("an alphabet needs at least one symbol")
        index = {}
        for i, name in enumerate(names):
            if not isinstance(name, str) or not name:
                raise AlphabetError(
                    f"symbol at position {i} must be a non-empty string, "
                    f"got {name!r}"
                )
            if name == "*":
                raise AlphabetError(
                    "'*' is reserved for the eternal (don't care) symbol"
                )
            if name in index:
                raise AlphabetError(f"duplicate symbol {name!r}")
            index[name] = i
        self._symbols: Tuple[str, ...] = tuple(names)
        self._index = index

    @classmethod
    def amino_acids(cls) -> "Alphabet":
        """The 20-letter amino-acid alphabet used throughout the paper."""
        return cls(AMINO_ACIDS)

    @classmethod
    def numbered(cls, m: int, prefix: str = "d") -> "Alphabet":
        """An alphabet ``d1, d2, ..., dm`` as in the paper's examples."""
        if m < 1:
            raise AlphabetError(f"alphabet size must be positive, got {m}")
        return cls(f"{prefix}{i}" for i in range(1, m + 1))

    # -- mapping ---------------------------------------------------------

    def index(self, symbol: str) -> int:
        """Return the integer index of *symbol*.

        Raises :class:`AlphabetError` for unknown symbols.
        """
        try:
            return self._index[symbol]
        except KeyError:
            raise AlphabetError(f"unknown symbol {symbol!r}") from None

    def symbol(self, index: int) -> str:
        """Return the symbol name at *index*."""
        if not 0 <= index < len(self._symbols):
            raise AlphabetError(
                f"index {index} out of range for alphabet of size {len(self)}"
            )
        return self._symbols[index]

    def encode(self, symbols: Iterable[str]) -> List[int]:
        """Encode an iterable of symbol names to a list of indices."""
        return [self.index(s) for s in symbols]

    def decode(self, indices: Iterable[int]) -> List[str]:
        """Decode an iterable of indices back to symbol names."""
        return [self.symbol(int(i)) for i in indices]

    # -- container protocol ---------------------------------------------

    @property
    def symbols(self) -> Tuple[str, ...]:
        """All symbol names in index order."""
        return self._symbols

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[str]:
        return iter(self._symbols)

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        if len(self._symbols) <= 8:
            inner = ", ".join(self._symbols)
        else:
            head = ", ".join(self._symbols[:4])
            tail = ", ".join(self._symbols[-2:])
            inner = f"{head}, ..., {tail}"
        return f"Alphabet([{inner}], m={len(self)})"
