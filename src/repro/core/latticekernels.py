"""Packed lattice kernels: batch candidate generation and containment.

After the match engines (PR 1) and the Phase-2 evaluator (PR 3) were
vectorized, the lattice layer — Apriori join + prune, border coverage,
Phase-3 label propagation — became the wall-clock bottleneck: all of it
was pure Python over frozen :class:`~repro.core.pattern.Pattern`
objects.  This module gives that layer the same treatment.

Representation
--------------
A *block* is a position-major ``(n, span)`` int32 array holding ``n``
same-span patterns, one per row, with :data:`WILDCARD` (``-1``) in the
don't-care positions.  Same-span rows make every lattice primitive a
dense array operation:

* **membership** — a row is identified by its raw bytes
  (``block.tobytes()`` sliced per row), so "is this pattern in the
  frequent set?" is one :class:`set` lookup per row instead of a
  :class:`Pattern` construction + hash;
* **containment** — ``inner ⊑ outer`` (Definition 3.3) over all pairs
  of two blocks is, per alignment offset, one vectorized window
  comparison;
* **candidate generation** — a whole level extends rightward at once:
  the candidate block is built by `repeat`/`tile`, and the Apriori
  prune tests each class of immediate subpattern (drop-first, interior
  drops) for the entire block with a handful of byte-key lookups.

Signature index
---------------
Every pattern carries a lazily cached 64-bit symbol bitmask
(:meth:`Pattern.signature64`, bit ``symbol & 63``).  Containment is
impossible unless every symbol of the inner pattern occurs in the
outer one, hence ``sig(inner) & ~sig(outer) == 0`` is a necessary
condition — checked in a few cycles before any positional work.  The
batch kernels apply it as a matrix prefilter (together with the weight
and span compatibility conditions) and report the traffic through the
``subsumption_checks`` / ``subsumption_skipped`` tracer counters; the
incremental :class:`~repro.core.border.Border` paths apply it per
member.  The filter is *exact*: it only ever skips pairs that could
not be related, so kernel results are bit-identical to the reference
path.

Mode selection mirrors the engine registry: ``lattice=None`` anywhere
resolves through the ``NOISYMINE_LATTICE`` environment variable and
defaults to ``"kernel"``; ``"reference"`` keeps the original pure
Python paths alive for differential testing.

Compiled acceleration
---------------------
When numba is importable (``pip install noisymine[native]``), the two
integer-only hot loops of this layer — the all-pairs containment sweep
and the join + prune membership lookups — dispatch to the compiled
kernels of :mod:`repro.core._nativekernels`, selected once at import
time (:data:`_NATIVE_SWEEP` / :data:`_NATIVE_MEMBER`).  The kernels
compare exactly the same rows the numpy paths compare, so results and
the ``subsumption_checks`` / ``subsumption_skipped`` accounting are
identical; only the throughput changes.  Compiled sweeps additionally
report their call count through the ``native_kernel_calls`` tracer
counter.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import MiningError
from ..obs import (
    NATIVE_KERNEL_CALLS,
    SUBSUMPTION_CHECKS,
    SUBSUMPTION_SKIPPED,
    Tracer,
)
from . import _nativekernels as _nk
from .pattern import Pattern, WILDCARD

#: Compiled containment / membership kernels, or ``None`` for the
#: numpy paths.  Module attributes (not locals) so the differential
#: tests can monkeypatch the pure-Python kernel twins in.
_NATIVE_SWEEP = _nk.containment_sweep if _nk.native_available else None
_NATIVE_MEMBER = _nk.rows_in_sorted if _nk.native_available else None

#: Environment variable overriding the default lattice mode.
LATTICE_ENV_VAR = "NOISYMINE_LATTICE"

#: Mode used when no lattice mode is requested anywhere.
DEFAULT_LATTICE_MODE = "kernel"

#: The recognised lattice modes.
LATTICE_MODES = ("reference", "kernel")

_ITEMSIZE = 4  # int32 row-key stride


def lattice_from_env() -> str:
    """The process-default lattice mode (``NOISYMINE_LATTICE`` or kernel)."""
    return os.environ.get(LATTICE_ENV_VAR) or DEFAULT_LATTICE_MODE


def resolve_lattice(spec: Optional[str] = None) -> str:
    """Resolve a lattice-mode specification to a validated mode name.

    ``None`` defers to :func:`lattice_from_env`; anything else must be
    one of :data:`LATTICE_MODES`.
    """
    if spec is None:
        spec = lattice_from_env()
    if spec not in LATTICE_MODES:
        raise MiningError(
            f"unknown lattice mode {spec!r}; "
            f"available modes: {', '.join(LATTICE_MODES)}"
        )
    return spec


def use_kernels(spec: Optional[str] = None) -> bool:
    """True when *spec* resolves to the packed-kernel mode."""
    return resolve_lattice(spec) == "kernel"


# -- packing ------------------------------------------------------------------


def pack_block(patterns: Sequence[Pattern], span: Optional[int] = None) -> np.ndarray:
    """Pack same-span patterns into a position-major ``(n, span)`` block.

    Rows hold the raw elements (symbol indices, :data:`WILDCARD` for
    ``*``) in int32.  All patterns must share one span; pass *span*
    explicitly to validate against an expected width (and to allow an
    empty pattern list).
    """
    plist = list(patterns)
    if span is None:
        if not plist:
            raise MiningError("cannot infer the span of an empty block")
        span = plist[0].span
    block = np.empty((len(plist), span), dtype=np.int32)
    for i, pattern in enumerate(plist):
        if pattern.span != span:
            raise MiningError(
                f"pack_block needs same-span patterns: expected span "
                f"{span}, got {pattern.span} ({pattern})"
            )
        block[i] = pattern.elements
    return block


def pack_by_span(
    patterns: Sequence[Pattern],
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Group *patterns* by span into ``{span: (block, indices)}``.

    ``indices`` maps each block row back to its position in the input
    sequence, so batch results can be scattered into input order.
    """
    by_span: Dict[int, List[int]] = {}
    for i, pattern in enumerate(patterns):
        by_span.setdefault(pattern.span, []).append(i)
    groups: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for span, indices in by_span.items():
        idx = np.asarray(indices, dtype=np.intp)
        groups[span] = (pack_block([patterns[i] for i in indices], span), idx)
    return groups


def row_keys(block: np.ndarray) -> List[bytes]:
    """The per-row byte keys of a block (hashable row identities).

    One ``tobytes`` call plus ``n`` slices — far cheaper than building
    ``n`` :class:`Pattern` objects to use as set keys.
    """
    n, span = block.shape
    raw = np.ascontiguousarray(block, dtype=np.int32).tobytes()
    stride = span * _ITEMSIZE
    return [raw[i * stride:(i + 1) * stride] for i in range(n)]


def block_signatures(block: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`Pattern.signature64` over a packed block."""
    shifts = (block & 63).astype(np.uint64)
    masks = np.where(
        block != WILDCARD, np.uint64(1) << shifts, np.uint64(0)
    )
    return np.bitwise_or.reduce(masks, axis=1)


def block_weights(block: np.ndarray) -> np.ndarray:
    """Per-row weights (non-wildcard counts) of a packed block."""
    return (block != WILDCARD).sum(axis=1).astype(np.int32)


def max_gap_rows(block: np.ndarray) -> np.ndarray:
    """Per-row longest run of consecutive wildcards."""
    n, span = block.shape
    run = np.zeros(n, dtype=np.int32)
    best = np.zeros(n, dtype=np.int32)
    for j in range(span):
        is_wild = block[:, j] == WILDCARD
        run = np.where(is_wild, run + 1, 0)
        np.maximum(best, run, out=best)
    return best


# -- batch containment --------------------------------------------------------


def subsumption_hits(
    inner: Sequence[Pattern],
    outer: Sequence[Pattern],
    tracer: Optional[Tracer] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """All-pairs containment between two pattern collections.

    Returns ``(inner_any, outer_any)``: ``inner_any[i]`` is true when
    ``inner[i]`` is a subpattern of at least one member of *outer*, and
    ``outer_any[j]`` when ``outer[j]`` has at least one subpattern in
    *inner* (both sides of the same pair relation, computed in one
    pass).

    Pairs are prefiltered by span (inner must not be longer), weight
    (inner must not be heavier) and the 64-bit symbol signature; only
    surviving pairs pay for positional window comparisons, one
    vectorized sweep per alignment offset.  When *tracer* is enabled
    the surviving / skipped pair counts land on the
    ``subsumption_checks`` / ``subsumption_skipped`` counters.
    """
    inner = list(inner)
    outer = list(outer)
    inner_any = np.zeros(len(inner), dtype=bool)
    outer_any = np.zeros(len(outer), dtype=bool)
    if not inner or not outer:
        return inner_any, outer_any
    checks = 0
    skipped = 0
    native_calls = 0
    in_groups = pack_by_span(inner)
    out_groups = pack_by_span(outer)
    for in_span, (in_block, in_idx) in in_groups.items():
        in_sig = block_signatures(in_block)
        in_weight = block_weights(in_block)
        for out_span, (out_block, out_idx) in out_groups.items():
            if out_span < in_span:
                skipped += in_block.shape[0] * out_block.shape[0]
                continue
            out_sig = block_signatures(out_block)
            out_weight = block_weights(out_block)
            if _NATIVE_SWEEP is not None:
                # Compiled sweep: same prefilter, same positional
                # comparisons, same check accounting — no (pairs, span)
                # gather ever materialised.
                sub_in = np.zeros(in_block.shape[0], dtype=np.bool_)
                sub_out = np.zeros(out_block.shape[0], dtype=np.bool_)
                pair_checks = int(_NATIVE_SWEEP(
                    in_block, in_sig, in_weight,
                    out_block, out_sig, out_weight,
                    sub_in, sub_out,
                ))
                checks += pair_checks
                skipped += in_sig.size * out_sig.size - pair_checks
                native_calls += 1
                inner_any[in_idx[sub_in]] = True
                outer_any[out_idx[sub_out]] = True
                continue
            compatible = (
                ((in_sig[:, None] & ~out_sig[None, :]) == 0)
                & (in_weight[:, None] <= out_weight[None, :])
            )
            pair_in, pair_out = np.nonzero(compatible)
            n_pairs = pair_in.size
            checks += n_pairs
            skipped += in_sig.size * out_sig.size - n_pairs
            if n_pairs == 0:
                continue
            queries = in_block[pair_in]
            windows = out_block[pair_out]
            hit = np.zeros(n_pairs, dtype=bool)
            for offset in range(out_span - in_span + 1):
                view = windows[:, offset:offset + in_span]
                hit |= ((queries == view) | (queries == WILDCARD)).all(axis=1)
            inner_any[in_idx[pair_in[hit]]] = True
            outer_any[out_idx[pair_out[hit]]] = True
    if tracer is not None and tracer.enabled:
        tracer.count(SUBSUMPTION_CHECKS, checks)
        tracer.count(SUBSUMPTION_SKIPPED, skipped)
        if native_calls:
            tracer.count(NATIVE_KERNEL_CALLS, native_calls)
    return inner_any, outer_any


def contains_any(
    queries: Sequence[Pattern],
    members: Sequence[Pattern],
    tracer: Optional[Tracer] = None,
) -> np.ndarray:
    """Per-query: is the query a subpattern of any member?

    The batch form of :meth:`Border.covers` — ``queries`` against the
    border elements — and of the downward half of Phase-3 label
    propagation.
    """
    return subsumption_hits(queries, members, tracer=tracer)[0]


def filter_undecided(
    undecided: Iterable[Pattern],
    newly_frequent: Sequence[Pattern],
    newly_infrequent: Sequence[Pattern],
    tracer: Optional[Tracer] = None,
) -> Set[Pattern]:
    """Phase-3 label propagation over a probe round's fresh decisions.

    Keeps the patterns that are neither a subpattern of a newly
    frequent probe (which would certify them frequent) nor a
    superpattern of a newly infrequent one (which would condemn them).
    Equivalent to the reference pairwise ``is_subpattern_of`` sweep in
    ``collapse_borders``, with the signature/weight/span prefilter
    applied to both directions at once.
    """
    ordered = list(undecided)
    if not ordered:
        return set()
    certified, _ = subsumption_hits(ordered, newly_frequent, tracer=tracer)
    _, condemned = subsumption_hits(newly_infrequent, ordered, tracer=tracer)
    keep = ~certified & ~condemned
    return {pattern for pattern, kept in zip(ordered, keep) if kept}


# -- batch candidate generation ----------------------------------------------


def _membership(
    block: np.ndarray, keysets: Dict[int, Set[bytes]]
) -> np.ndarray:
    """Row-wise membership of *block* in the span-keyed frequent sets."""
    n, span = block.shape
    keyset = keysets.get(span)
    if not keyset:
        return np.zeros(n, dtype=bool)
    raw = np.ascontiguousarray(block, dtype=np.int32).tobytes()
    stride = span * _ITEMSIZE
    return np.fromiter(
        (raw[i * stride:(i + 1) * stride] in keyset for i in range(n)),
        dtype=bool,
        count=n,
    )


class _FrequentIndex:
    """Span-keyed row-membership index over the frequent set.

    The numpy path hashes row bytes into per-span :class:`set` objects;
    the native path keeps each span's block lexicographically sorted
    and binary-searches query rows with the compiled
    ``rows_in_sorted`` kernel (no per-row Python objects at all).
    Both answer exactly "is this row one of the frequent rows", so the
    candidate sets are identical.  *member_kernel* overrides the
    import-time selection (differential tests pass the pure-Python
    kernel twin).
    """

    def __init__(self, patterns: Sequence[Pattern], member_kernel=None):
        self._kernel = (
            member_kernel if member_kernel is not None else _NATIVE_MEMBER
        )
        self._tables: Dict[int, np.ndarray] = {}
        self._keysets: Dict[int, Set[bytes]] = {}
        for span, (block, _idx) in pack_by_span(list(patterns)).items():
            if self._kernel is not None:
                order = np.lexsort(block.T[::-1])
                self._tables[span] = np.ascontiguousarray(block[order])
            else:
                self._keysets[span] = set(row_keys(block))

    def contains_rows(self, block: np.ndarray) -> np.ndarray:
        if self._kernel is None:
            return _membership(block, self._keysets)
        n, span = block.shape
        table = self._tables.get(span)
        if table is None:
            return np.zeros(n, dtype=bool)
        out = np.zeros(n, dtype=np.bool_)
        self._kernel(
            np.ascontiguousarray(block, dtype=np.int32), table, out
        )
        return out


def kernel_generate_candidates(
    frequent: Set[Pattern],
    frequent_symbols: Sequence[int],
    constraints,
) -> Set[Pattern]:
    """Batch Apriori join + prune (the packed twin of the reference
    ``generate_candidates``).

    Patterns are grouped by their wildcard *shape* (the tuple of fixed
    positions); within a shape group every row extends identically, so
    the candidate block for one ``(shape, gap)`` pair is built with
    ``repeat``/``tile`` and pruned as a whole:

    * the **drop-last** immediate subpattern of ``P ·*ᵍ· d`` is ``P``
      itself — in the frequent set by construction, never checked;
    * the **drop-first** subpattern is a fixed column slice of the
      candidate block (the shape fixes where the second symbol sits),
      one byte-key lookup per row after a shape-level admissibility
      check (its wildcard runs are shape constants);
    * each **interior drop** merges two wildcard runs — again a shape
      constant, so inadmissible drops (any merged run exceeding
      ``max_gap``; always, when ``max_gap == 0``) are skipped for the
      whole block, and admissible ones are one masked-column byte-key
      lookup per row.

    Candidates are unique across shape groups (a rightward extension
    determines its generator), so no cross-block deduplication is
    needed.  Results are set-identical to the reference path for any
    input, including non-admissible "frequent" patterns fed by the
    differential tests.
    """
    if not frequent:
        return set()
    symbols = np.asarray(list(frequent_symbols), dtype=np.int32)
    n_sym = symbols.size
    if n_sym == 0:
        return set()

    # Frequent-set membership keyed by span: row-byte sets on the
    # numpy path, sorted blocks + the compiled binary-search kernel on
    # the native path.
    index = _FrequentIndex(list(frequent))

    # Group the extendable patterns by wildcard shape.  A pattern ends
    # with a symbol, so the shape (fixed-position tuple) determines the
    # span; all shape-level run lengths below are plain Python ints.
    shapes: Dict[Tuple[int, ...], List[Pattern]] = {}
    for pattern in frequent:
        if pattern.weight + 1 > constraints.max_weight:
            continue
        shape = tuple(
            i for i, e in enumerate(pattern.elements) if e != WILDCARD
        )
        shapes.setdefault(shape, []).append(pattern)

    candidates: Set[Pattern] = set()
    max_gap = constraints.max_gap
    for shape, patterns in shapes.items():
        span = shape[-1] + 1
        k = len(shape)
        block = pack_block(patterns, span)
        n_rows = block.shape[0]
        # Wildcard runs between consecutive fixed positions of the
        # generator; the candidate appends one more run (the new gap).
        runs = [shape[i] - shape[i - 1] - 1 for i in range(1, k)]
        for gap in range(max_gap + 1):
            new_span = span + gap + 1
            if new_span > constraints.max_span:
                break
            # Candidate block: every row × every symbol.
            n_cand = n_rows * n_sym
            cand = np.full((n_cand, new_span), WILDCARD, dtype=np.int32)
            cand[:, :span] = np.repeat(block, n_sym, axis=0)
            cand[:, -1] = np.tile(symbols, n_rows)
            alive = np.ones(n_cand, dtype=bool)
            all_runs = runs + [gap]

            # Drop-first: strip the lead symbol and its trailing run.
            # The sub starts at the candidate's second fixed position —
            # a shape constant — and keeps runs[1:] plus the new gap.
            first_cut = shape[1] if k >= 2 else new_span - 1
            if max(all_runs[1:], default=0) <= max_gap:
                sub = cand[:, first_cut:]
                alive &= index.contains_rows(sub)

            # Interior drops: blanking fixed position j merges the two
            # adjacent runs; admissibility is a shape constant (and the
            # merged run is >= 1, so max_gap == 0 skips them all).
            for j in range(1, k):
                if not alive.any():
                    break
                merged = all_runs[j - 1] + 1 + all_runs[j]
                rest = all_runs[:j - 1] + all_runs[j + 1:]
                if merged > max_gap or max(rest, default=0) > max_gap:
                    continue
                sub = cand.copy()
                sub[:, shape[j]] = WILDCARD
                alive &= index.contains_rows(sub)

            for i in np.nonzero(alive)[0]:
                candidates.add(Pattern(cand[i]))
    return candidates


# -- batch restricted spread --------------------------------------------------


def batch_restricted_spread(
    patterns: Sequence[Pattern], symbol_match: Sequence[float]
) -> np.ndarray:
    """Claim 4.2's restricted spread for a whole candidate batch.

    Returns a float64 array aligned with *patterns*: per pattern, the
    minimum Phase-1 symbol match over its fixed symbols — identical
    values to per-pattern ``restricted_spread`` calls, computed as one
    gather + row-min per span group.
    """
    plist = list(patterns)
    match = np.asarray(symbol_match, dtype=np.float64)
    out = np.empty(len(plist), dtype=np.float64)
    for _span, (block, idx) in pack_by_span(plist).items():
        values = np.where(
            block != WILDCARD,
            match[np.clip(block, 0, None)],
            np.inf,
        )
        out[idx] = values.min(axis=1)
    return out


__all__ = [
    "DEFAULT_LATTICE_MODE",
    "LATTICE_ENV_VAR",
    "LATTICE_MODES",
    "batch_restricted_spread",
    "block_signatures",
    "block_weights",
    "contains_any",
    "filter_undecided",
    "kernel_generate_candidates",
    "lattice_from_env",
    "max_gap_rows",
    "pack_block",
    "pack_by_span",
    "resolve_lattice",
    "row_keys",
    "subsumption_hits",
    "use_kernels",
]
