"""Sparse match evaluation (Section 4.2's efficiency remark).

The paper notes that "since the compatibility matrix is usually a
sparse matrix, we can easily obtain a much more efficient algorithm to
compute the match in nearly Θ(|S|) time".  In practice (Section 5.7's
scalability study) a symbol is compatible with only ~10% of the
others, so most window products are zero and the dense sliding-window
evaluation wastes almost all of its work.

:class:`SparseMatchEngine` exploits that: for each pattern symbol it
keeps the *compatible set* — the observed symbols with non-zero
compatibility — and evaluates only the windows where every fixed
position is compatible.  Candidate windows are found by intersecting
shifted posting lists (the positions in the sequence whose observed
symbol is compatible with the pattern symbol), the classic
inverted-index strategy for approximate string matching the paper
cites.

For dense matrices the engine degrades gracefully to the dense cost;
``bench_ablation_sparse.py`` measures the crossover.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import MiningError
from .compatibility import CompatibilityMatrix
from .pattern import Pattern
from .sequence import AnySequenceDatabase, SequenceLike, as_sequence_array


class SparseMatchEngine:
    """Match evaluation specialised for sparse compatibility matrices.

    Parameters
    ----------
    matrix:
        The compatibility matrix; sparsity is detected automatically.

    The engine is a drop-in alternative to
    :func:`repro.core.match.sequence_match` /
    :func:`repro.core.match.database_matches` with identical results.
    """

    def __init__(self, matrix: CompatibilityMatrix):
        self.matrix = matrix
        array = matrix.array
        m = matrix.size
        #: For each true symbol, the observed symbols it is compatible
        #: with (non-zero matrix entry).
        self._compatible: List[np.ndarray] = [
            np.flatnonzero(array[d] > 0.0).astype(np.int32) for d in range(m)
        ]
        #: Membership mask: ``mask[d, o]`` iff C(d, o) > 0.
        self._mask = array > 0.0

    @property
    def density(self) -> float:
        """Fraction of non-zero compatibility entries."""
        return float(self._mask.mean())

    # -- single sequence ---------------------------------------------------

    def sequence_match(
        self, pattern: Pattern, sequence: SequenceLike
    ) -> float:
        """``M(P, S)`` — identical to the dense engine's result."""
        seq = as_sequence_array(sequence)
        windows = len(seq) - pattern.span + 1
        if windows <= 0:
            return 0.0
        starts = self._candidate_starts(pattern, seq, windows)
        if starts.size == 0:
            return 0.0
        c = self.matrix.array
        product = np.ones(starts.size, dtype=np.float64)
        for offset, symbol in pattern.fixed_positions:
            product *= c[symbol].take(seq[starts + offset])
        return float(product.max())

    def _candidate_starts(
        self, pattern: Pattern, seq: np.ndarray, windows: int
    ) -> np.ndarray:
        """Window starts where every fixed position is compatible.

        Intersects the shifted compatibility masks position by
        position, rarest first, so the candidate set collapses quickly
        on sparse matrices.
        """
        fixed = pattern.fixed_positions
        # Order by selectivity: fewest compatible symbols first.
        ordered = sorted(
            fixed, key=lambda item: self._compatible[item[1]].size
        )
        starts: Optional[np.ndarray] = None
        for offset, symbol in ordered:
            ok = self._mask[symbol].take(seq[offset : offset + windows])
            if starts is None:
                starts = np.flatnonzero(ok).astype(np.int64)
            else:
                starts = starts[
                    self._mask[symbol].take(seq[starts + offset])
                ]
            if starts.size == 0:
                return starts
        assert starts is not None
        return starts

    # -- whole database ----------------------------------------------------

    def database_matches(
        self,
        patterns: Sequence[Pattern],
        database: AnySequenceDatabase,
    ) -> Dict[Pattern, float]:
        """Batch evaluation in one scan, like the dense counterpart."""
        patterns = list(patterns)
        if not patterns:
            return {}
        totals = np.zeros(len(patterns), dtype=np.float64)
        count = 0
        for _sid, seq in database.scan():
            count += 1
            for index, pattern in enumerate(patterns):
                totals[index] += self.sequence_match(pattern, seq)
        if count == 0:
            raise MiningError(
                "cannot compute matches over an empty database"
            )
        return {
            p: float(t / count) for p, t in zip(patterns, totals)
        }

    def __repr__(self) -> str:
        return (
            f"SparseMatchEngine(m={self.matrix.size}, "
            f"density={self.density:.3f})"
        )
