"""Reference (non-vectorised) implementations of the match metric.

These follow the paper's pseudocode (Algorithm 4.2) literally, one
symbol at a time, and exist to cross-validate the vectorised engine in
:mod:`repro.core.match`.  They are exercised heavily by the property
tests; production code should use the vectorised versions.
"""

from __future__ import annotations

from typing import Sequence

from .compatibility import CompatibilityMatrix
from .pattern import Pattern, WILDCARD
from .sequence import AnySequenceDatabase


def naive_segment_match(
    pattern: Pattern,
    segment: Sequence[int],
    matrix: CompatibilityMatrix,
) -> float:
    """Definition 3.5, evaluated position by position."""
    assert len(segment) == pattern.span
    value = 1.0
    for element, observed in zip(pattern.elements, segment):
        if element == WILDCARD:
            continue  # C(*, d') = 1 by definition
        value *= matrix.prob(element, int(observed))
    return value


def naive_sequence_match(
    pattern: Pattern,
    sequence: Sequence[int],
    matrix: CompatibilityMatrix,
) -> float:
    """Definition 3.6 via an explicit sliding window (Algorithm 4.2)."""
    span = pattern.span
    best = 0.0
    for start in range(len(sequence) - span + 1):
        current = naive_segment_match(
            pattern, sequence[start : start + span], matrix
        )
        if current > best:
            best = current
    return best


def naive_database_match(
    pattern: Pattern,
    database: AnySequenceDatabase,
    matrix: CompatibilityMatrix,
) -> float:
    """Definition 3.7: plain average over the database's sequences."""
    total = 0.0
    count = 0
    for _sid, seq in database.scan():
        total += naive_sequence_match(pattern, list(int(v) for v in seq), matrix)
        count += 1
    return total / count


def naive_symbol_matches(
    database: AnySequenceDatabase, matrix: CompatibilityMatrix
) -> list:
    """Algorithm 4.1 lines 1-11, literally (no distinct-symbol shortcut)."""
    m = matrix.size
    match = [0.0] * m
    n = len(database)
    for _sid, seq in database.scan():
        max_match = [0.0] * m
        for observed in seq:
            for d in range(m):
                c = matrix.prob(d, int(observed))
                if c > max_match[d]:
                    max_match[d] = c
        for d in range(m):
            match[d] += max_match[d] / n
    return match
