"""Compiled (numba) hot-loop kernels with transparent numpy fallback.

The vectorized numpy tiers (PRs 1-8) already removed per-pattern
Python dispatch, but they still materialise full intermediate planes:
the ``(m + 1, L, N)`` factor array for window scoring, ``(B, W, N)``
score buffers, ``(pairs, span)`` gathers for containment.  This module
holds the three loops profiling shows dominant — sliding-window match
scoring, lattice join + prune membership, and signature containment —
written as *fused* single-pass loops in the numba ``nopython`` subset.

Availability model
------------------
numba is an **optional** dependency (``pip install noisymine[native]``).
At import time each kernel is compiled with ``@njit(cache=True)`` when
numba is importable and left as its pure-Python twin otherwise; the
outcome is surfaced through :data:`native_available` so callers (the
``"native"`` engine, the lattice layer, shard workers) can select a
numpy path instead of paying interpreted loop costs.  The pure-Python
functions are always exported under their ``py_`` names, so the kernel
*logic* is differential-tested on every CI leg, numba or not.

Bit-compatibility
-----------------
All float64 kernels are bit-identical to the numpy tiers they replace:

* window products multiply factors in the same offset order as
  :func:`repro.engine.kernels.chunk_group_maxima` (wildcard factors
  are exactly ``1.0``, pad factors exactly ``0.0``), and the
  early-exit on a zero partial product is exact because matrix entries
  are validated non-negative (``0.0 * x == 0.0`` for every remaining
  factor);
* per-sequence maxima are returned to the caller, who sums them with
  the *same* ``np.sum`` reduction the vectorized engine uses — so the
  totals, not just the products, match bit for bit;
* the containment sweep and sorted-row membership kernels are integer
  comparisons with no floating point at all.

The ``float32`` variants of the scoring kernels trade bit-identity for
memory bandwidth; the native engine keeps their accumulation in
float64 and the benchmark gates bound the deviation instead.

Warm-up accounting
------------------
JIT compilation is paid once per process, not per task: call
:func:`warm_kernels` (idempotent, thread-safe) from pool initializers
and daemon startup.  The seconds spent compiling accumulate in
:func:`jit_compile_seconds` and surface as the ``jit_compile_seconds``
run counter.  ``@njit(cache=True)`` additionally persists the machine
code on disk, so even freshly spawned processes mostly *load* instead
of compile.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

import numpy as np

try:  # pragma: no cover - exercised only on the numba CI leg
    from numba import njit as _njit

    native_available = True
    _unavailable_reason: Optional[str] = None
except ImportError as exc:  # numba absent: keep the pure-Python twins
    _njit = None
    native_available = False
    _unavailable_reason = str(exc) or repr(exc)


def native_unavailable_reason() -> str:
    """Why compiled kernels are unavailable (empty string when they are)."""
    return "" if native_available else (
        _unavailable_reason or "numba is not importable"
    )


# -- pure-Python kernel bodies (numba nopython subset) ------------------------
#
# Every function below is written in the restricted subset numba
# compiles in nopython mode: scalar loops, ``np.zeros``/``np.ones``
# with dtype arguments, no Python objects.  The same source therefore
# serves as the interpreted twin (differential testing, ``kernels=
# "pure"`` engine mode) and as the compilation target.


def py_window_group_maxima(padded, c_ext, elements, out):
    """Fused sliding-window best-match for one same-span pattern group.

    ``out[r, i] = max over windows w of prod_o
    c_ext[elements[r, o], padded[i, w + o]]`` — the compiled twin of
    :func:`repro.engine.kernels.chunk_group_maxima`, computed in one
    pass with no factor array or score plane ever materialised.

    *padded* is the ``(N, L)`` right-padded symbol chunk, *c_ext* the
    ``(m + 1, m + 1)`` extended matrix (float64 or float32),
    *elements* the ``(B, span)`` group with wildcards remapped to
    ``m``, and *out* a preallocated ``(B, N)`` array in the matrix
    dtype.  The caller guarantees ``L >= span``.
    """
    one = np.ones(1, c_ext.dtype)[0]
    zero = np.zeros(1, c_ext.dtype)[0]
    n, length = padded.shape
    b, span = elements.shape
    windows = length - span + 1
    for r in range(b):
        for i in range(n):
            best = zero
            for w in range(windows):
                prod = one
                for o in range(span):
                    prod = prod * c_ext[elements[r, o], padded[i, w + o]]
                    if prod == zero:
                        break
                if prod > best:
                    best = prod
            out[r, i] = best


def py_symbol_window_maxima(padded, c_ext, out):
    """Phase-1 per-symbol best factor per sequence, in one fused pass.

    ``out[d, i] = max_t c_ext[d, padded[i, t]]`` for every real symbol
    ``d < m`` — the compiled twin of
    :func:`repro.engine.kernels.chunk_symbol_maxima`.  The maximum
    over positions equals the maximum over the *distinct* symbols
    present in the row (matrix entries are non-negative and the pad
    column is all zeros), so each sequence is scanned once to build a
    presence mask and the reduction runs over symbols instead of
    positions.
    """
    zero = np.zeros(1, c_ext.dtype)[0]
    mm = c_ext.shape[0]
    m = mm - 1
    n, length = padded.shape
    present = np.zeros(mm, np.bool_)
    for i in range(n):
        for s in range(mm):
            present[s] = False
        for t in range(length):
            present[padded[i, t]] = True
        for d in range(m):
            best = zero
            for s in range(m):
                if present[s]:
                    value = c_ext[d, s]
                    if value > best:
                        best = value
            out[d, i] = best


def py_containment_sweep(
    in_block, in_sig, in_weight, out_block, out_sig, out_weight,
    inner_any, outer_any,
):
    """All-pairs ``inner ⊑ outer`` between two same-span blocks.

    The compiled twin of the pair sweep inside
    :func:`repro.core.latticekernels.subsumption_hits`: for every
    (inner row, outer row) pair that survives the signature and weight
    prefilter, test positional containment at every alignment offset,
    marking ``inner_any`` / ``outer_any`` exactly as the numpy path
    does.  Returns the number of pairs that survived the prefilter
    (the ``subsumption_checks`` traffic); the caller derives the
    skipped count.  Blocks are ``(n, span)`` int32 with ``-1``
    wildcards; the caller guarantees ``out span >= in span``.
    """
    ni, si = in_block.shape
    no, so = out_block.shape
    zero64 = np.zeros(1, np.uint64)[0]
    checks = 0
    for a in range(ni):
        sig = in_sig[a]
        weight = in_weight[a]
        for b in range(no):
            if (sig & ~out_sig[b]) != zero64:
                continue
            if weight > out_weight[b]:
                continue
            checks += 1
            for offset in range(so - si + 1):
                hit = True
                for j in range(si):
                    element = in_block[a, j]
                    if element != -1 and element != out_block[b, offset + j]:
                        hit = False
                        break
                if hit:
                    inner_any[a] = True
                    outer_any[b] = True
                    break
    return checks


def py_rows_in_sorted(queries, table, out):
    """Row-wise membership of *queries* in a lexicographically sorted block.

    The compiled twin of the byte-key set lookups in
    :func:`repro.core.latticekernels.kernel_generate_candidates`:
    binary-search each ``(span,)`` query row in the row-sorted
    ``(f, span)`` *table* and write the hit flags into *out*.  Both
    blocks are int32 with identical spans; *table* rows are sorted by
    ``np.lexsort`` over the columns (any consistent total order
    works).
    """
    q, span = queries.shape
    f = table.shape[0]
    for i in range(q):
        lo = 0
        hi = f
        while lo < hi:
            mid = (lo + hi) // 2
            less = False
            greater = False
            for j in range(span):
                a = table[mid, j]
                b = queries[i, j]
                if a < b:
                    less = True
                    break
                if a > b:
                    greater = True
                    break
            if less:
                lo = mid + 1
            elif greater:
                hi = mid
            else:
                lo = mid
                hi = mid
        hit = False
        if lo < f:
            hit = True
            for j in range(span):
                if table[lo, j] != queries[i, j]:
                    hit = False
                    break
        out[i] = hit


def py_derive_child_planes(padded, c_ext, parent, symbol, offset, plane_out,
                           maxima_out):
    """Fused child-plane derivation for the resident evaluator.

    A child pattern is its parent plus one fixed *symbol* at position
    *offset*; its score plane is the parent's plane times one shifted
    factor row.  This kernel fuses the derivation with the per-sequence
    reduction: ``plane_out[w, i] = parent[w, i] * c_ext[symbol,
    padded[i, offset + w]]`` and ``maxima_out[i] = max_w plane_out[w,
    i]`` in one loop nest, never materialising the ``(m + 1, L, N)``
    factor array :func:`repro.engine.kernels.extend_plane` gathers
    from.  *parent* may have more than ``L - offset`` rows (a
    shallower ancestor's plane); only the first ``L - offset`` are
    read.  Multiplies run in the numpy path's offset order and the max
    is exact, so float64 planes are bit-identical to ``extend_plane``.
    """
    zero = np.zeros(1, c_ext.dtype)[0]
    n, length = padded.shape
    windows = length - offset
    for i in range(n):
        maxima_out[i] = zero
    for w in range(windows):
        t = w + offset
        for i in range(n):
            value = parent[w, i] * c_ext[symbol, padded[i, t]]
            plane_out[w, i] = value
            if value > maxima_out[i]:
                maxima_out[i] = value


def py_derive_sibling_batch(padded, c_ext, parent, use_parent, symbols,
                            offset, maxima_out):
    """One BFS sibling group — same parent, same offset — in one call.

    ``maxima_out[s, i] = max_w parent[w, i] * c_ext[symbols[s],
    padded[i, offset + w]]`` for every sibling ``s``.  The shared
    parent-plane element and the observed symbol are loaded once per
    ``(w, i)`` and the sibling loop runs innermost, so the dominant
    memory traffic (the parent plane) is paid once per group instead of
    once per candidate.  ``use_parent=False`` evaluates a root group
    (span-1 patterns, ``offset == 0``): the plane is the factor row
    itself and *parent* is ignored.  Matrix entries are non-negative,
    so initialising the running maxima to zero matches
    ``np.maximum.reduce`` bit for bit.
    """
    zero = np.zeros(1, c_ext.dtype)[0]
    n, length = padded.shape
    windows = length - offset
    s_count = symbols.shape[0]
    for s in range(s_count):
        for i in range(n):
            maxima_out[s, i] = zero
    if use_parent:
        for w in range(windows):
            t = w + offset
            for i in range(n):
                shared = parent[w, i]
                obs = padded[i, t]
                for s in range(s_count):
                    value = shared * c_ext[symbols[s], obs]
                    if value > maxima_out[s, i]:
                        maxima_out[s, i] = value
    else:
        for w in range(windows):
            t = w + offset
            for i in range(n):
                obs = padded[i, t]
                for s in range(s_count):
                    value = c_ext[symbols[s], obs]
                    if value > maxima_out[s, i]:
                        maxima_out[s, i] = value


def py_replay_plane_chain(padded, c_ext, base, use_base, symbols, offsets,
                          plane_out):
    """Rebuild an evicted score plane by replaying its prefix chain.

    *symbols*/*offsets* hold the chain links to apply in prefix order
    (outermost ancestor first, the target pattern's own last symbol
    last).  With ``use_base`` the plane seeds from *base*, the deepest
    still-stored ancestor's plane; otherwise the first link must be
    the span-1 root (``offsets[0] == 0``) and the plane seeds from its
    factor row.  Every link then multiplies its shifted factor row in
    place — the whole chain replays inside one kernel call instead of
    one Python-level ``extend_plane`` per link.

    Only the final span's ``L - offsets[-1]`` window rows are tracked:
    row ``w`` of any plane depends only on row ``w`` of its ancestors,
    so the truncation is exact and the left-to-right multiply order
    keeps float64 results bit-identical to the numpy recursion.
    """
    n, length = padded.shape
    links = symbols.shape[0]
    windows = length - offsets[links - 1]
    start = 0
    if use_base:
        for w in range(windows):
            for i in range(n):
                plane_out[w, i] = base[w, i]
    else:
        root = symbols[0]
        for w in range(windows):
            for i in range(n):
                plane_out[w, i] = c_ext[root, padded[i, w]]
        start = 1
    for j in range(start, links):
        symbol = symbols[j]
        off = offsets[j]
        for w in range(windows):
            t = w + off
            for i in range(n):
                plane_out[w, i] = (
                    plane_out[w, i] * c_ext[symbol, padded[i, t]]
                )


# -- compiled selection -------------------------------------------------------

def _compile(function: Callable) -> Callable:
    """``@njit(cache=True)`` when numba is present, identity otherwise."""
    if not native_available:
        return function
    return _njit(cache=True)(function)  # pragma: no cover - numba leg


#: The active kernels: compiled when numba imported, pure Python
#: otherwise.  Callers that need a numpy path instead of interpreted
#: loops must branch on :data:`native_available` rather than calling
#: these unconditionally.
window_group_maxima = _compile(py_window_group_maxima)
symbol_window_maxima = _compile(py_symbol_window_maxima)
containment_sweep = _compile(py_containment_sweep)
rows_in_sorted = _compile(py_rows_in_sorted)
derive_child_planes = _compile(py_derive_child_planes)
derive_sibling_batch = _compile(py_derive_sibling_batch)
replay_plane_chain = _compile(py_replay_plane_chain)


# -- warm-up accounting -------------------------------------------------------

_warm_lock = threading.Lock()
_warmed = False
_jit_seconds = 0.0


def warm_kernels() -> float:
    """Trigger JIT compilation of every kernel, once per process.

    Returns the seconds spent compiling *by this call* — ``0.0`` when
    the process is already warm or numba is unavailable.  Thread-safe
    and idempotent, so pool initializers, daemon startup and lazy
    engine paths can all call it without double-charging
    :func:`jit_compile_seconds`.  With ``cache=True`` on the kernels,
    most of the work is an on-disk cache load rather than a compile.
    """
    global _warmed, _jit_seconds
    with _warm_lock:
        if _warmed:
            return 0.0
        _warmed = True
        if not native_available:
            return 0.0
        started = time.perf_counter()
        for dtype in (np.float64, np.float32):
            c_ext = np.zeros((3, 3), dtype=dtype)
            c_ext[:2, :2] = 0.5
            c_ext[2, :2] = 1.0
            padded = np.array([[0, 1, 2]], dtype=np.int64)
            elements = np.array([[0, 2]], dtype=np.int64)
            window_group_maxima(
                padded, c_ext, elements, np.zeros((1, 1), dtype=dtype)
            )
            symbol_window_maxima(
                padded, c_ext, np.zeros((2, 1), dtype=dtype)
            )
            # The resident-evaluator kernels: a (windows, N) = (3, 1)
            # plane, one sibling pair and a two-link replay chain warm
            # every signature the hot loop dispatches, including the
            # rootless (use_parent/use_base = False) branches.
            plane = np.ones((3, 1), dtype=dtype)
            maxima = np.zeros(1, dtype=dtype)
            derive_child_planes(
                padded, c_ext, plane, 0, 1,
                np.zeros((2, 1), dtype=dtype), maxima,
            )
            siblings = np.array([0, 1], dtype=np.int64)
            derive_sibling_batch(
                padded, c_ext, plane, True, siblings, 1,
                np.zeros((2, 1), dtype=dtype),
            )
            derive_sibling_batch(
                padded, c_ext, plane, False, siblings, 0,
                np.zeros((2, 1), dtype=dtype),
            )
            chain_symbols = np.array([0, 1], dtype=np.int64)
            chain_offsets = np.array([0, 1], dtype=np.int64)
            replay_plane_chain(
                padded, c_ext, plane, False, chain_symbols, chain_offsets,
                np.zeros((2, 1), dtype=dtype),
            )
            replay_plane_chain(
                padded, c_ext, plane, True, chain_symbols[1:],
                chain_offsets[1:], np.zeros((2, 1), dtype=dtype),
            )
        block = np.array([[0, -1, 1]], dtype=np.int32)
        flags = np.zeros(1, dtype=np.bool_)
        containment_sweep(
            block,
            np.array([3], dtype=np.uint64),
            np.array([2], dtype=np.int32),
            block,
            np.array([3], dtype=np.uint64),
            np.array([2], dtype=np.int32),
            flags.copy(),
            flags.copy(),
        )
        rows_in_sorted(block, block, flags.copy())
        elapsed = time.perf_counter() - started
        _jit_seconds += elapsed
        return elapsed


def jit_compile_seconds() -> float:
    """Total seconds this process has spent in kernel JIT warm-up."""
    return _jit_seconds


def kernels_warmed() -> bool:
    """Whether :func:`warm_kernels` has completed in this process."""
    return _warmed


def _reset_warmup_for_testing() -> None:
    """Forget warm-up state (tests only; not part of the public API)."""
    global _warmed, _jit_seconds
    with _warm_lock:
        _warmed = False
        _jit_seconds = 0.0


__all__ = [
    "containment_sweep",
    "derive_child_planes",
    "derive_sibling_batch",
    "jit_compile_seconds",
    "kernels_warmed",
    "native_available",
    "native_unavailable_reason",
    "py_containment_sweep",
    "py_derive_child_planes",
    "py_derive_sibling_batch",
    "py_replay_plane_chain",
    "py_rows_in_sorted",
    "py_symbol_window_maxima",
    "py_window_group_maxima",
    "replay_plane_chain",
    "rows_in_sorted",
    "symbol_window_maxima",
    "warm_kernels",
    "window_group_maxima",
]
