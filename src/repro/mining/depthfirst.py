"""Depth-first, projection-based mining (the Section 2.2 class).

The paper surveys depth-first miners (FP-growth, FreeSpan, SPADE,
DepthProject) and observes that they "generally perform better than
breadth-first ones if the data is memory-resident, and the advantage
becomes more substantial when the pattern is long" — but rejects them
for its own setting because the data is disk-resident.  This module
implements the class faithfully so the trade-off can be measured.

The search walks the rightward-extension tree depth first.  At each
node the miner holds a **projection** of the database onto the current
pattern: for every sequence, the vector of window-start products of the
pattern against that sequence (zero rows dropped).  Extending the
pattern by one symbol only needs, per sequence, an elementwise multiply
of the retained window products with one gathered compatibility row —
no rescan of the raw data — which is exactly the projection reuse that
makes the depth-first class fast in memory.

Because the whole database must be materialised, the miner reports a
single scan (the one that loads the data); its costs are CPU and
memory, not passes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.border import Border
from ..core.compatibility import CompatibilityMatrix
from ..core.lattice import PatternConstraints
from ..core.latticekernels import resolve_lattice
from ..core.pattern import Pattern, WILDCARD
from ..core.sequence import AnySequenceDatabase
from ..engine import EngineSpec, get_engine
from ..errors import MiningError
from ..obs import (
    CANDIDATES_GENERATED,
    SCANS,
    Tracer,
    ensure_tracer,
    io_snapshot,
    record_io,
)
from .result import MiningResult


class _Projection:
    """Per-sequence window products for one pattern.

    ``rows`` holds ``(sequence_index, start_positions, products)`` for
    every sequence with at least one non-zero window.
    """

    __slots__ = ("rows", "n_sequences")

    def __init__(
        self,
        rows: List[Tuple[int, np.ndarray, np.ndarray]],
        n_sequences: int,
    ):
        self.rows = rows
        self.n_sequences = n_sequences

    def match(self) -> float:
        """``M(P, D)`` from the retained window products."""
        total = 0.0
        for _index, _starts, products in self.rows:
            total += float(products.max())
        return total / self.n_sequences


class DepthFirstMiner:
    """Projection-based depth-first miner for memory-resident data.

    Produces exactly the same frequent set as
    :class:`~repro.mining.levelwise.LevelwiseMiner`; only the traversal
    and the cost profile differ.
    """

    algorithm = "depthfirst"

    def __init__(
        self,
        matrix: CompatibilityMatrix,
        min_match: float,
        constraints: Optional[PatternConstraints] = None,
        engine: EngineSpec = None,
        tracer: Optional[Tracer] = None,
        lattice: Optional[str] = None,
    ):
        if not 0.0 < min_match <= 1.0:
            raise MiningError(f"min_match must lie in (0, 1], got {min_match}")
        self.matrix = matrix
        self.min_match = min_match
        self.constraints = constraints or PatternConstraints()
        self.engine = get_engine(engine)
        self.tracer = ensure_tracer(tracer)
        self.lattice = resolve_lattice(lattice)

    def mine(self, database: AnySequenceDatabase) -> MiningResult:
        started = time.perf_counter()
        scans_before = database.scan_count
        tracer = self.tracer
        tracer.note("lattice", self.lattice)

        with tracer.phase("materialize"):
            # Materialise once: the defining assumption of this class.
            io_before = io_snapshot(database)
            sequences: List[np.ndarray] = [
                np.asarray(seq) for _sid, seq in database.scan()
            ]
            tracer.count(SCANS, 1)
            record_io(tracer, database, io_before)
            m = self.matrix.size
            symbol_match = self._symbol_matches(sequences)

        frequent_symbols = [
            d for d in range(m) if symbol_match[d] >= self.min_match
        ]
        frequent: Dict[Pattern, float] = {}
        self._nodes_visited = 0

        with tracer.phase("search"):
            for symbol in frequent_symbols:
                pattern = Pattern.single(symbol)
                projection = self._project_symbol(sequences, symbol)
                frequent[pattern] = float(symbol_match[symbol])
                self._extend(
                    pattern, projection, sequences, frequent_symbols, frequent
                )
            # Every visited tree node is one candidate evaluated against
            # the in-memory projections.
            tracer.count(CANDIDATES_GENERATED, self._nodes_visited)

        scans = database.scan_count - scans_before
        elapsed = time.perf_counter() - started
        return MiningResult(
            frequent=frequent,
            border=Border(frequent, lattice=self.lattice, tracer=tracer),
            scans=scans,
            elapsed_seconds=elapsed,
            extras={
                "symbol_match": symbol_match,
                "nodes_visited": self._nodes_visited,
            },
            report=tracer.report(
                algorithm=self.algorithm,
                engine=self.engine.name,
                scans=scans,
                elapsed_seconds=elapsed,
            ),
        )

    # -- internals -----------------------------------------------------------

    def _symbol_matches(self, sequences: List[np.ndarray]) -> np.ndarray:
        # The engine's in-memory Phase-1 kernel (chunked/batched for the
        # vectorized and parallel backends).
        return self.engine.symbol_matches_rows(sequences, self.matrix)

    def _project_symbol(
        self, sequences: List[np.ndarray], symbol: int
    ) -> _Projection:
        rows: List[Tuple[int, np.ndarray, np.ndarray]] = []
        row = self.matrix.array[symbol]
        for index, seq in enumerate(sequences):
            products = row.take(seq)
            starts = np.flatnonzero(products > 0.0)
            if starts.size:
                rows.append((index, starts, products[starts]))
        return _Projection(rows, len(sequences))

    def _extend(
        self,
        pattern: Pattern,
        projection: _Projection,
        sequences: List[np.ndarray],
        frequent_symbols: Sequence[int],
        frequent: Dict[Pattern, float],
    ) -> None:
        """Depth-first recursion over rightward extensions."""
        constraints = self.constraints
        if pattern.weight >= constraints.max_weight:
            return
        for gap in range(constraints.max_gap + 1):
            new_span = pattern.span + gap + 1
            if new_span > constraints.max_span:
                break
            offset = pattern.span + gap
            for symbol in frequent_symbols:
                child = Pattern(
                    list(pattern.elements) + [WILDCARD] * gap + [symbol]
                )
                self._nodes_visited += 1
                child_projection = self._project_extension(
                    projection, sequences, offset, symbol, new_span
                )
                value = child_projection.match()
                if value >= self.min_match:
                    frequent[child] = value
                    self._extend(
                        child,
                        child_projection,
                        sequences,
                        frequent_symbols,
                        frequent,
                    )

    def _project_extension(
        self,
        projection: _Projection,
        sequences: List[np.ndarray],
        offset: int,
        symbol: int,
        new_span: int,
    ) -> _Projection:
        """Multiply the retained window products by one more position."""
        row = self.matrix.array[symbol]
        rows: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for index, starts, products in projection.rows:
            seq = sequences[index]
            limit = len(seq) - new_span + 1
            if limit <= 0:
                continue
            keep = starts < limit
            if not keep.any():
                continue
            starts_kept = starts[keep]
            extended = products[keep] * row.take(seq[starts_kept + offset])
            positive = extended > 0.0
            if positive.any():
                rows.append(
                    (index, starts_kept[positive], extended[positive])
                )
        return _Projection(rows, projection.n_sequences)
