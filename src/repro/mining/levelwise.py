"""Breadth-first (Apriori-style) mining under the match metric.

This is the "direct generalisation of existing algorithms" the paper
uses as its conceptual starting point: the classical level-wise search
with match counters instead of support counters.  It is exact, simple,
and — as the paper argues — slow for long patterns on disk-resident
data, because every lattice level costs at least one full database scan.

It doubles as the exact reference miner in tests and as the engine that
produces the per-level candidate counts of Figure 9.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set


from ..core.border import Border
from ..core.compatibility import CompatibilityMatrix
from ..core.lattice import PatternConstraints, generate_candidates
from ..core.latticekernels import resolve_lattice
from ..core.pattern import Pattern
from ..core.sequence import AnySequenceDatabase
from ..engine import EngineSpec, get_engine
from ..errors import MiningError
from ..obs import (
    CANDIDATES_GENERATED,
    SCANS,
    Tracer,
    ensure_tracer,
    io_snapshot,
    record_io,
)
from .counting import count_matches_batched, validate_memory_capacity
from .result import LevelStats, MiningResult


class LevelwiseMiner:
    """Exact Apriori mining of all frequent patterns by match.

    Parameters
    ----------
    matrix:
        The compatibility matrix.  Pass
        :meth:`CompatibilityMatrix.identity` to obtain the classical
        support model (match degenerates to support).
    min_match:
        The frequency threshold in ``(0, 1]``.
    constraints:
        Structural bounds on enumerated patterns.
    memory_capacity:
        Maximum pattern counters per database pass (``None`` =
        unbounded, i.e. one scan per lattice level).
    engine:
        Match-execution backend for every counting pass (a registered
        name or a :class:`~repro.engine.MatchEngine` instance).
    tracer:
        Optional :class:`repro.obs.Tracer`; records one ``phase1-scan``
        span plus one ``level-k`` span per lattice level and attaches a
        :class:`repro.obs.RunReport` to the result.
    lattice:
        Lattice execution mode (``"kernel"`` or ``"reference"``;
        ``None`` defers to ``NOISYMINE_LATTICE``).  Kernel mode runs
        candidate generation and border maintenance through the packed
        numpy batch kernels; results are identical in both modes.
    """

    algorithm = "levelwise"

    def __init__(
        self,
        matrix: CompatibilityMatrix,
        min_match: float,
        constraints: Optional[PatternConstraints] = None,
        memory_capacity: Optional[int] = None,
        engine: EngineSpec = None,
        tracer: Optional[Tracer] = None,
        lattice: Optional[str] = None,
    ):
        if not 0.0 < min_match <= 1.0:
            raise MiningError(
                f"min_match must lie in (0, 1], got {min_match}"
            )
        validate_memory_capacity(memory_capacity)
        self.matrix = matrix
        self.min_match = min_match
        self.constraints = constraints or PatternConstraints()
        self.memory_capacity = memory_capacity
        self.engine = get_engine(engine)
        self.tracer = ensure_tracer(tracer)
        self.lattice = resolve_lattice(lattice)

    def mine(self, database: AnySequenceDatabase) -> MiningResult:
        """Run the full breadth-first search over *database*."""
        started = time.perf_counter()
        scans_before = database.scan_count
        tracer = self.tracer
        tracer.note("lattice", self.lattice)

        with tracer.phase("phase1-scan"):
            io_before = io_snapshot(database)
            symbol_match = self.engine.symbol_matches(
                database, self.matrix, tracer=tracer
            )  # one scan
            tracer.count(SCANS, 1)
            record_io(tracer, database, io_before)
        frequent_symbols = [
            d
            for d in range(self.matrix.size)
            if symbol_match[d] >= self.min_match
        ]
        frequent: Dict[Pattern, float] = {
            Pattern.single(d): float(symbol_match[d])
            for d in frequent_symbols
        }
        level_stats = [
            LevelStats(
                level=1,
                candidates=self.matrix.size,
                frequent=len(frequent_symbols),
            )
        ]

        current: Set[Pattern] = set(frequent)
        level = 1
        while current and level < self.constraints.max_weight:
            candidates = generate_candidates(
                current, frequent_symbols, self.constraints,
                lattice=self.lattice, tracer=tracer,
            )
            if not candidates:
                break
            level += 1
            with tracer.phase(f"level-{level}"):
                tracer.count(CANDIDATES_GENERATED, len(candidates))
                matches = count_matches_batched(
                    sorted(candidates),
                    database,
                    self.matrix,
                    self.memory_capacity,
                    engine=self.engine,
                    tracer=tracer,
                )
                survivors = {
                    p: v for p, v in matches.items() if v >= self.min_match
                }
            frequent.update(survivors)
            level_stats.append(
                LevelStats(
                    level=level,
                    candidates=len(candidates),
                    frequent=len(survivors),
                )
            )
            current = set(survivors)

        scans = database.scan_count - scans_before
        elapsed = time.perf_counter() - started
        return MiningResult(
            frequent=frequent,
            border=Border(frequent, lattice=self.lattice, tracer=tracer),
            scans=scans,
            elapsed_seconds=elapsed,
            level_stats=level_stats,
            extras={"symbol_match": symbol_match},
            report=tracer.report(
                algorithm=self.algorithm,
                engine=self.engine.name,
                scans=scans,
                elapsed_seconds=elapsed,
            ),
        )


def mine_support(
    database: AnySequenceDatabase,
    alphabet_size: int,
    min_support: float,
    constraints: Optional[PatternConstraints] = None,
    memory_capacity: Optional[int] = None,
    engine: EngineSpec = None,
) -> MiningResult:
    """Classical exact-match support mining.

    Convenience wrapper: level-wise mining with the identity
    compatibility matrix, under which ``match == support`` (the paper's
    bridge property, Section 3 item 3).
    """
    miner = LevelwiseMiner(
        CompatibilityMatrix.identity(alphabet_size),
        min_support,
        constraints=constraints,
        memory_capacity=memory_capacity,
        engine=engine,
    )
    return miner.mine(database)
