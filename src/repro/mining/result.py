"""Result and statistics containers shared by every miner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from ..core.border import Border
from ..core.pattern import Pattern
from ..obs import RunReport


@dataclass
class LevelStats:
    """Per-lattice-level accounting of a breadth-first mining pass."""

    level: int
    candidates: int
    frequent: int

    def __str__(self) -> str:
        return (
            f"level {self.level}: {self.candidates} candidates, "
            f"{self.frequent} frequent"
        )


@dataclass
class MiningResult:
    """The outcome of a mining run.

    Attributes
    ----------
    frequent:
        Every discovered frequent pattern mapped to its (measured)
        match in the database the miner was pointed at.
    border:
        The border (maximal antichain) of the frequent set.
    scans:
        Number of full passes over the *full* database.  Scans of the
        in-memory sample are free by the paper's cost model and are not
        included.
    elapsed_seconds:
        Wall-clock mining time.
    level_stats:
        Per-level candidate/frequent counts for breadth-first phases
        (used to reproduce Figure 9).
    extras:
        Algorithm-specific diagnostics (e.g. number of ambiguous
        patterns, border distances, probe batches).
    report:
        Structured per-phase metrics (:class:`repro.obs.RunReport`)
        when the miner ran with a live tracer; ``None`` otherwise.
    """

    frequent: Dict[Pattern, float]
    border: Border
    scans: int
    elapsed_seconds: float = 0.0
    level_stats: List[LevelStats] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)
    report: Optional[RunReport] = None

    @property
    def patterns(self) -> Set[Pattern]:
        """The set of frequent patterns (keys of :attr:`frequent`)."""
        return set(self.frequent)

    def max_weight(self) -> int:
        """Weight of the heaviest frequent pattern (0 when none)."""
        if not self.frequent:
            return 0
        return max(p.weight for p in self.frequent)

    def candidates_per_level(self) -> Dict[int, int]:
        """``{level: candidate count}`` from the recorded level stats."""
        return {s.level: s.candidates for s in self.level_stats}

    def summary(self) -> str:
        """A short human-readable account of the run."""
        return (
            f"{len(self.frequent)} frequent patterns "
            f"(max weight {self.max_weight()}), "
            f"border size {len(self.border)}, "
            f"{self.scans} database scans, "
            f"{self.elapsed_seconds:.3f}s"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (patterns as strings).

        The inverse is :meth:`from_dict`; `extras` are omitted (they
        hold arbitrary diagnostic objects).  When the run carried a
        live tracer, the structured :attr:`report` appears under the
        ``"metrics"`` key.
        """
        payload: Dict[str, object] = {
            "frequent": {
                pattern.to_string(): value
                for pattern, value in sorted(self.frequent.items())
            },
            "border": sorted(
                element.to_string() for element in self.border.elements
            ),
            "scans": self.scans,
            "elapsed_seconds": self.elapsed_seconds,
            "level_stats": [
                {
                    "level": s.level,
                    "candidates": s.candidates,
                    "frequent": s.frequent,
                }
                for s in self.level_stats
            ],
        }
        if self.report is not None:
            payload["metrics"] = self.report.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MiningResult":
        """Rebuild a result from :meth:`to_dict` output."""
        frequent = {
            _pattern_from_string(text): float(value)
            for text, value in payload["frequent"].items()
        }
        return cls(
            frequent=frequent,
            border=Border(
                _pattern_from_string(text) for text in payload["border"]
            ),
            scans=int(payload["scans"]),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            level_stats=[
                LevelStats(
                    level=int(s["level"]),
                    candidates=int(s["candidates"]),
                    frequent=int(s["frequent"]),
                )
                for s in payload.get("level_stats", [])
            ],
            report=(
                RunReport.from_dict(payload["metrics"])
                if payload.get("metrics") is not None
                else None
            ),
        )


def _pattern_from_string(text: str) -> Pattern:
    """Parse the index-based rendering of :meth:`Pattern.to_string`."""
    elements = [
        -1 if token == "*" else int(token) for token in text.split()
    ]
    return Pattern(elements)


@dataclass
class SampleClassification:
    """Phase-2 output: the three-way split of patterns on the sample.

    Attributes
    ----------
    fqt:
        Border between frequent and ambiguous patterns (the paper's
        FQT): maximal patterns whose sample match exceeds
        ``min_match + ε``.
    infqt:
        Border between ambiguous and infrequent patterns (the paper's
        INFQT): maximal patterns whose sample match exceeds
        ``min_match - ε`` (frequent or ambiguous).
    labels:
        Every evaluated pattern's label (``frequent`` / ``ambiguous`` /
        ``infrequent``).
    sample_matches:
        Every evaluated pattern's match on the sample.
    epsilons:
        The Chernoff band half-width used for each pattern (depends on
        its restricted spread).
    symbol_match:
        Phase-1 per-symbol match vector over the full database.
    """

    fqt: Border
    infqt: Border
    labels: Dict[Pattern, str]
    sample_matches: Dict[Pattern, float]
    epsilons: Dict[Pattern, float]
    symbol_match: Mapping[int, float]

    def ambiguous_patterns(self) -> Set[Pattern]:
        """All patterns labelled ambiguous on the sample."""
        from .chernoff import AMBIGUOUS

        return {p for p, label in self.labels.items() if label == AMBIGUOUS}

    def frequent_patterns(self) -> Set[Pattern]:
        """All patterns labelled frequent on the sample."""
        from .chernoff import FREQUENT

        return {p for p, label in self.labels.items() if label == FREQUENT}

    def ambiguous_count(self) -> int:
        return len(self.ambiguous_patterns())
