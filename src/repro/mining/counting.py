"""Batched match counting under a memory budget.

The paper's cost model charges one database pass per batch of pattern
counters that fits in memory.  :func:`count_matches_batched` is the one
place that model is enforced: every miner funnels its full-database
counting through it, so scan counts are comparable across algorithms.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.compatibility import CompatibilityMatrix
from ..core.match import database_matches
from ..core.pattern import Pattern
from ..core.sequence import AnySequenceDatabase
from ..errors import MiningError


def count_matches_batched(
    patterns: Iterable[Pattern],
    database: AnySequenceDatabase,
    matrix: CompatibilityMatrix,
    memory_capacity: Optional[int] = None,
) -> Dict[Pattern, float]:
    """Compute ``M(P, D)`` for every pattern, in as few scans as allowed.

    Parameters
    ----------
    memory_capacity:
        Maximum number of pattern counters held in memory during one
        pass.  ``None`` means unbounded (everything in one scan).

    The number of scans consumed is ``ceil(len(patterns) /
    memory_capacity)`` and is observable through the database's
    ``scan_count``.
    """
    unique: List[Pattern] = list(dict.fromkeys(patterns))
    if not unique:
        return {}
    if memory_capacity is not None and memory_capacity < 1:
        raise MiningError(
            f"memory_capacity must be >= 1, got {memory_capacity}"
        )
    batch_size = memory_capacity or len(unique)
    result: Dict[Pattern, float] = {}
    for start in range(0, len(unique), batch_size):
        batch = unique[start : start + batch_size]
        result.update(database_matches(batch, database, matrix))
    return result
