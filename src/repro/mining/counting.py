"""Batched match counting under a memory budget.

The paper's cost model charges one database pass per batch of pattern
counters that fits in memory.  :func:`count_matches_batched` is the one
place that model is enforced: every miner funnels its full-database
counting through it, so scan counts are comparable across algorithms.

It is also the single dispatch point into the match-execution layer
(:mod:`repro.engine`): the *engine* argument selects which backend
evaluates each batch, while the batching itself — and therefore the
observable ``scan_count`` semantics — stays identical across backends:
exactly ``ceil(n_unique / memory_capacity)`` scans per call, where
``n_unique`` is the number of patterns left after deduplication.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..core.compatibility import CompatibilityMatrix
from ..core.pattern import Pattern
from ..core.sequence import AnySequenceDatabase
from ..engine import EngineSpec, get_engine
from ..errors import MiningError
from ..obs import (
    PATTERNS_COUNTED,
    SCANS,
    Tracer,
    ensure_tracer,
    io_snapshot,
    record_io,
)


def validate_memory_capacity(memory_capacity: Optional[int]) -> None:
    """Reject non-positive memory budgets with one canonical message.

    A scan batch must hold at least one pattern counter;
    ``memory_capacity=0`` would make every counting call an infinite
    loop of empty scans, so it is rejected eagerly (miners call this
    from their constructors, before any scan is consumed).
    """
    if memory_capacity is not None and memory_capacity < 1:
        raise MiningError(
            f"memory_capacity must be >= 1, got {memory_capacity}: the "
            "memory budget is the number of pattern counters held during "
            "one scan, and a scan that can hold no counter can never "
            "make progress (use None for an unbounded budget)"
        )


def count_matches_batched(
    patterns: Iterable[Pattern],
    database: AnySequenceDatabase,
    matrix: CompatibilityMatrix,
    memory_capacity: Optional[int] = None,
    engine: EngineSpec = None,
    tracer: Optional[Tracer] = None,
    scan_counter: str = SCANS,
    patterns_counter: str = PATTERNS_COUNTED,
) -> Dict[Pattern, float]:
    """Compute ``M(P, D)`` for every pattern, in as few scans as allowed.

    Parameters
    ----------
    memory_capacity:
        Maximum number of pattern counters held in memory during one
        pass.  ``None`` means unbounded (everything in one scan).
    engine:
        Match-execution backend: a registered name (``"reference"``,
        ``"vectorized"``, ``"parallel"``), a
        :class:`~repro.engine.MatchEngine` instance, or ``None`` for
        the process default.
    tracer:
        Optional :class:`~repro.obs.Tracer`; each dispatched batch
        counts one *scan_counter* tick and ``len(batch)``
        *patterns_counter* ticks, and is forwarded to the engine for
        backend-level counters (cache traffic, shard dispatch).
    scan_counter / patterns_counter:
        Counter names used for the per-batch accounting.  Phase-2
        callers counting against the in-memory sample pass
        ``"sample_scans"`` / ``"sample_patterns_counted"`` so that the
        ``"scans"`` counter keeps meaning *full-database passes* —
        the paper's cost metric — exactly.

    The number of scans consumed is ``ceil(len(unique patterns) /
    memory_capacity)`` and is observable through the database's
    ``scan_count``; the engine choice never changes it.
    """
    unique = list(dict.fromkeys(patterns))
    if not unique:
        return {}
    validate_memory_capacity(memory_capacity)
    eng = get_engine(engine)
    tracer = ensure_tracer(tracer)
    io_before = io_snapshot(database)
    batch_size = memory_capacity or len(unique)
    result: Dict[Pattern, float] = {}
    for start in range(0, len(unique), batch_size):
        # Engines consume the database through the chunked scan API
        # (iter_chunks / scan_chunks), so each batch streams row blocks
        # instead of materialising the database; the scan accounting
        # below is unchanged by that.
        batch = unique[start : start + batch_size]
        result.update(
            eng.database_matches(batch, database, matrix, tracer=tracer)
        )
        tracer.count(scan_counter, 1)
        tracer.count(patterns_counter, len(batch))
    # Disk-resident backends accumulate I/O counters during the scans;
    # record the delta on the current span stack (a Phase-3 probe round,
    # a levelwise level, ...), so every phase carries its own traffic.
    record_io(tracer, database, io_before)
    return result
