"""Phase 2: three-way pattern classification on the in-memory sample.

Given the Phase-1 outputs (exact per-symbol matches over the full
database and a uniform random sample), this module runs a breadth-first
search **on the sample only** and labels every candidate pattern:

* ``frequent``   — sample match above ``min_match + ε``,
* ``ambiguous``  — sample match within the ``±ε`` band,
* ``infrequent`` — sample match below ``min_match - ε``,

where ``ε`` is the Chernoff band for the pattern's restricted spread
(Claims 4.1/4.2).  Candidates are extended as long as they are not
infrequent: by the Apriori property a pattern is worth examining iff
every subpattern is frequent-or-ambiguous.

The output is the pair of borders the paper calls FQT and INFQT,
together with per-pattern labels, sample matches and band widths.
Sample scans are free in the paper's cost model (the sample lives in
memory), so this phase contributes no database passes.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Sequence, Set, Union

import numpy as np

from ..core.border import Border
from ..core.compatibility import CompatibilityMatrix
from ..core.lattice import PatternConstraints, generate_candidates
from ..core.latticekernels import batch_restricted_spread, use_kernels
from ..core.pattern import Pattern
from ..core.sequence import SequenceDatabase
from ..errors import MiningError
from . import chernoff
from .chernoff import (
    AMBIGUOUS,
    FREQUENT,
    INFREQUENT,
    chernoff_epsilon,
    classify_value,
    restricted_spread,
)
from ..engine import (
    EngineSpec,
    ResidentSampleEvaluator,
    resident_from_env,
    sibling_order,
)
from ..obs import (
    CANDIDATES_GENERATED,
    SAMPLE_PATTERNS_COUNTED,
    SAMPLE_SCANS,
    Tracer,
    ensure_tracer,
)
from .counting import count_matches_batched
from .result import SampleClassification


def classify_on_sample(
    sample: SequenceDatabase,
    matrix: CompatibilityMatrix,
    min_match: float,
    delta: float,
    symbol_match: Sequence[float],
    constraints: Optional[PatternConstraints] = None,
    use_restricted_spread: bool = True,
    exact: bool = False,
    engine: "EngineSpec" = None,
    tracer: Optional[Tracer] = None,
    resident: Union[None, bool, ResidentSampleEvaluator] = None,
    lattice: Optional[str] = None,
) -> SampleClassification:
    """Run the Phase-2 breadth-first classification.

    Parameters
    ----------
    sample:
        The in-memory sample drawn during Phase 1.
    symbol_match:
        Exact per-symbol matches over the **full** database (Phase 1);
        symbols are decided exactly, and the per-pattern restricted
        spread is derived from these values.
    use_restricted_spread:
        When ``False``, the default spread ``R = 1`` is used for every
        pattern — the configuration Figure 11(b) compares against.
    delta:
        Chernoff failure probability; confidence is ``1 - delta``.
    exact:
        The sample *is* the full database: matches are exact, the band
        collapses to zero and no pattern stays ambiguous.  A pattern is
        then frequent iff its (exact) match reaches ``min_match`` — the
        zero-width band must not leave threshold-exact patterns
        ambiguous.  Used by the miner when the database fits in memory.
    tracer:
        Optional :class:`repro.obs.Tracer`; records candidate counts
        and in-memory sample scans (under the ``sample_scans`` counter,
        kept apart from full-database ``scans``).
    resident:
        Count the BFS levels with a
        :class:`~repro.engine.resident.ResidentSampleEvaluator` that
        pins the sample once and extends each candidate's score plane
        incrementally from its parent's — the sample is fixed for the
        whole phase, which is exactly the evaluator's sweet spot.
        ``None`` defers to the ``NOISYMINE_RESIDENT`` environment
        variable (default off).  Results and scan accounting are
        identical either way; only Phase-2 wall-clock changes.
    lattice:
        Lattice execution mode for candidate generation, border
        maintenance and the restricted-spread evaluation:
        ``"kernel"`` (packed numpy batch kernels, the default) or
        ``"reference"`` (the original pure-Python paths).  ``None``
        defers to the ``NOISYMINE_LATTICE`` environment variable.
        Labels, borders and every recorded value are identical in both
        modes.
    """
    constraints = constraints or PatternConstraints()
    tracer = ensure_tracer(tracer)
    kernels = use_kernels(lattice)
    lattice_mode = "kernel" if kernels else "reference"
    if resident is None:
        resident = resident_from_env()
    if isinstance(resident, ResidentSampleEvaluator):
        # A warm evaluator handed in by a long-lived caller (the
        # mining daemon): its pin survives across runs, so a second
        # job on the same sample skips the factor-array build and its
        # plane store starts hot.  The content-digest pin check makes
        # reuse safe — a different sample transparently re-pins.
        engine = resident
    elif resident:
        # A fresh evaluator per run: the pin is built on the first
        # level's scan and reused by every later level; the plane store
        # dies with the phase.
        engine = ResidentSampleEvaluator()
    if not 0.0 < min_match <= 1.0:
        raise MiningError(f"min_match must lie in (0, 1], got {min_match}")
    n = len(sample)

    symbol_match = np.asarray(symbol_match, dtype=np.float64)
    if symbol_match.shape != (matrix.size,):
        raise MiningError(
            f"symbol_match must have shape ({matrix.size},), "
            f"got {symbol_match.shape}"
        )

    # Level 1: symbols are decided exactly by the Phase-1 full scan.
    frequent_symbols = [
        d for d in range(matrix.size) if symbol_match[d] >= min_match
    ]
    # Degenerate-band check: when the Chernoff half-width reaches the
    # threshold, the lower band edge hits zero, no pattern can ever be
    # labelled infrequent, and the candidate space explodes.  The fix is
    # a larger sample, a larger delta, or a higher threshold.
    worst_spread = (
        max((float(symbol_match[d]) for d in frequent_symbols), default=1.0)
        if use_restricted_spread
        else 1.0
    )
    worst_epsilon = chernoff_epsilon(worst_spread, delta, n)
    if not exact and worst_epsilon >= min_match:
        warnings.warn(
            f"Chernoff band half-width ({worst_epsilon:.3f}) reaches the "
            f"min_match threshold ({min_match}); no pattern can be ruled "
            "out on this sample and candidate enumeration may explode. "
            "Increase sample_size, increase delta, or raise min_match.",
            RuntimeWarning,
            stacklevel=2,
        )
    labels: Dict[Pattern, str] = {}
    sample_matches: Dict[Pattern, float] = {}
    epsilons: Dict[Pattern, float] = {}
    fqt = Border(lattice=lattice_mode, tracer=tracer)
    infqt = Border(lattice=lattice_mode, tracer=tracer)
    survivors: Set[Pattern] = set()
    for d in range(matrix.size):
        pattern = Pattern.single(d)
        value = float(symbol_match[d])
        sample_matches[pattern] = value
        epsilons[pattern] = 0.0  # exact, no band
        if value >= min_match:
            labels[pattern] = FREQUENT
            fqt.add(pattern)
            infqt.add(pattern)
            survivors.add(pattern)
        else:
            labels[pattern] = INFREQUENT

    # Memoized Chernoff half-widths: *delta* and *n* are fixed for the
    # whole run and the distinct restricted spreads per level number in
    # the handful (one per minimum symbol match), so the per-candidate
    # sqrt+log collapses to a dict lookup.
    epsilon_cache: Dict[float, float] = {}

    def banded_epsilon(spread: float) -> float:
        epsilon = epsilon_cache.get(spread)
        if epsilon is None:
            epsilon = epsilon_cache[spread] = chernoff_epsilon(
                spread, delta, n
            )
        return epsilon

    level = 1
    while survivors and level < constraints.max_weight:
        candidates = generate_candidates(
            survivors, frequent_symbols, constraints,
            lattice=lattice_mode, tracer=tracer,
        )
        if not candidates:
            break
        level += 1
        tracer.count(CANDIDATES_GENERATED, len(candidates))
        ordered = sorted(candidates)
        # The restricted spread of the whole level in one batched
        # gather (kernel mode) or per pattern (reference mode); the
        # values are identical, and each pattern's spread is consumed
        # twice below (zero shortcut + Chernoff band).  The batch path
        # only applies while the module-level ``restricted_spread``
        # hook is the stock one — rebinding it (tests, experiments)
        # must keep steering every spread evaluation.
        if use_restricted_spread:
            if kernels and restricted_spread is chernoff.restricted_spread:
                spread_of = dict(
                    zip(ordered,
                        batch_restricted_spread(ordered, symbol_match))
                )
            else:
                spread_of = {
                    pattern: restricted_spread(pattern, symbol_match)
                    for pattern in ordered
                }
        else:
            spread_of = {}
        # A zero restricted spread means some symbol of the pattern has
        # match 0 over the full database, so the pattern's match is
        # provably 0 (Claim 4.2): classify it infrequent immediately.
        # Without this, the zero-width Chernoff band could leave such a
        # pattern ambiguous and Phase 3 would burn probe scans on it.
        countable = []
        for pattern in ordered:
            if use_restricted_spread and spread_of[pattern] == 0.0:
                labels[pattern] = INFREQUENT
                sample_matches[pattern] = 0.0
                epsilons[pattern] = 0.0
            else:
                countable.append(pattern)
        if isinstance(engine, ResidentSampleEvaluator):
            # Hand the level over in sibling order: same-parent groups
            # stay contiguous, so a memory budget splitting the batch
            # cuts through at most one sibling group per scan boundary
            # and each parent plane is derived once.  Per-pattern match
            # values are order-independent, so labels are unchanged.
            countable = sibling_order(countable)
        matches = count_matches_batched(
            countable, sample, matrix, engine=engine, tracer=tracer,
            scan_counter=SAMPLE_SCANS,
            patterns_counter=SAMPLE_PATTERNS_COUNTED,
        )
        next_survivors: Set[Pattern] = set()
        for pattern, value in matches.items():
            if exact:
                # Exact matches need no band; value == min_match is
                # frequent (the same >= rule that decides symbols), not
                # ambiguous as the zero-width classify_value band would
                # label it.
                epsilon = 0.0
                label = FREQUENT if value >= min_match else INFREQUENT
            else:
                spread = (
                    spread_of[pattern] if use_restricted_spread else 1.0
                )
                epsilon = banded_epsilon(spread)
                label = classify_value(value, min_match, epsilon)
            labels[pattern] = label
            sample_matches[pattern] = value
            epsilons[pattern] = epsilon
            if label == FREQUENT:
                fqt.add(pattern)
            if label != INFREQUENT:
                infqt.add(pattern)
                next_survivors.add(pattern)
        survivors = next_survivors

    return SampleClassification(
        fqt=fqt,
        infqt=infqt,
        labels=labels,
        sample_matches=sample_matches,
        epsilons=epsilons,
        symbol_match={d: float(v) for d, v in enumerate(symbol_match)},
    )


def ambiguous_count(classification: SampleClassification) -> int:
    """Number of patterns labelled ambiguous (Figures 10-12 metric)."""
    return sum(
        1 for label in classification.labels.values() if label == AMBIGUOUS
    )
