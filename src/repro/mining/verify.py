"""Post-hoc verification of mining results.

A :class:`~repro.mining.result.MiningResult` makes three structural
promises: every reported pattern meets the threshold, the reported set
is downward closed (Apriori), and the border is exactly the set of
maximal reported patterns.  :func:`verify_result` checks all three —
optionally re-measuring every match against the database — and returns
a structured report.  It is used by the test-suite as an oracle and is
handy for users integrating the library into pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.border import Border
from ..core.compatibility import CompatibilityMatrix
from ..core.lattice import PatternConstraints
from ..core.pattern import Pattern
from ..core.sequence import AnySequenceDatabase
from ..engine import EngineSpec, get_engine
from .result import MiningResult

#: Tolerance when re-measuring match values (sample-estimated values in
#: probabilistic results can differ from the exact ones).
DEFAULT_TOLERANCE = 1e-9


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_result`; falsy when any check failed."""

    threshold_violations: List[Pattern] = field(default_factory=list)
    closure_violations: List[Pattern] = field(default_factory=list)
    border_mismatch: bool = False
    value_mismatches: List[Pattern] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.threshold_violations
            or self.closure_violations
            or self.border_mismatch
            or self.value_mismatches
        )

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        if self.ok:
            return "result verified: all structural checks passed"
        parts = []
        if self.threshold_violations:
            parts.append(
                f"{len(self.threshold_violations)} below threshold"
            )
        if self.closure_violations:
            parts.append(
                f"{len(self.closure_violations)} closure violations"
            )
        if self.border_mismatch:
            parts.append("border mismatch")
        if self.value_mismatches:
            parts.append(f"{len(self.value_mismatches)} value mismatches")
        return "result verification FAILED: " + ", ".join(parts)


def verify_result(
    result: MiningResult,
    min_match: float,
    constraints: Optional[PatternConstraints] = None,
    database: Optional[AnySequenceDatabase] = None,
    matrix: Optional[CompatibilityMatrix] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    engine: EngineSpec = None,
) -> VerificationReport:
    """Check a mining result's structural invariants.

    Parameters
    ----------
    result:
        The result to inspect.
    min_match:
        The threshold the run was configured with.
    constraints:
        When given, closure checking is restricted to subpatterns the
        constraints admit (as the miner's search space was).
    database, matrix:
        When both are given, every reported match value is re-measured
        exactly (costs one scan) and compared within *tolerance*.
        Use a larger tolerance for probabilistic results whose interior
        values are sample estimates.
    """
    report = VerificationReport()

    # 1. Threshold: every reported value meets the bar.
    for pattern, value in result.frequent.items():
        if value < min_match - tolerance:
            report.threshold_violations.append(pattern)

    # 2. Downward closure: subpatterns of reported patterns (inside the
    #    constrained lattice) are reported too.
    reported = set(result.frequent)
    for pattern in reported:
        for sub in pattern.immediate_subpatterns():
            if constraints is not None and not constraints.admits(sub):
                continue
            if sub not in reported:
                report.closure_violations.append(sub)

    # 3. Border: exactly the maximal antichain of the reported set.
    if Border(reported) != result.border:
        report.border_mismatch = True

    # 4. Optional exact re-measurement.
    if database is not None and matrix is not None and reported:
        exact = get_engine(engine).database_matches(
            sorted(reported), database, matrix
        )
        for pattern, value in result.frequent.items():
            if abs(exact[pattern] - value) > tolerance:
                report.value_mismatches.append(pattern)

    return report
