"""Phase 3: border collapsing (Algorithms 4.3 and 4.4).

After Phase 2, the patterns between the FQT and INFQT borders are
*ambiguous*: the sample was not conclusive about them.  A level-wise
verification would march through them one lattice level per scan; the
paper instead probes the **halfway layers** between the two borders —
a binary search through the lattice.  Every probed pattern decides more
than itself: a frequent probe certifies all its subpatterns frequent,
an infrequent probe condemns all its superpatterns (the Apriori
property), so each scan collapses the remaining ambiguous region by
roughly half (and more when a layer gets mixed labels, the paper's
Figure 6(b) scenario).

The probe schedule follows Algorithm 4.3: the halfway layer first, then
the quarter-way layers, the eighth-way layers, ... until the memory
budget (number of counters per scan) is filled; one database pass counts
all scheduled probes; labels propagate; repeat until no ambiguous
pattern remains.

Each probe round's single pass is executed through
:func:`~repro.mining.counting.count_matches_batched`, whose engines
stream the database via the chunked scan API — every scheduled probe of
the round is counted against each row block as it arrives, so a
disk-resident round touches each chunk exactly once, and the round's
I/O traffic lands on its own ``probe-round-N`` span in the run report.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..core.border import Border
from ..core.compatibility import CompatibilityMatrix
from ..core.latticekernels import filter_undecided, use_kernels
from ..core.pattern import Pattern
from ..core.sequence import AnySequenceDatabase
from ..engine import (
    EngineSpec,
    ResidentSampleEvaluator,
    get_engine,
    sibling_order,
)
from ..obs import (
    AMBIGUOUS_REMAINING,
    PROBE_ROUNDS,
    PROBES,
    Tracer,
    ensure_tracer,
)
from .counting import count_matches_batched, validate_memory_capacity
from .result import SampleClassification


@dataclass
class CollapseOutcome:
    """What border collapsing produced.

    Attributes
    ----------
    border:
        The final border of frequent patterns.
    verified:
        Exact database matches for every pattern probed in Phase 3.
    scans:
        Database passes consumed by Phase 3 alone.
    probe_rounds:
        The probe batches, in order (diagnostic; one scan each).
    """

    border: Border
    verified: Dict[Pattern, float]
    scans: int
    probe_rounds: List[List[Pattern]] = field(default_factory=list)


def layer_schedule(low: int, high: int) -> List[int]:
    """The halfway / quarter-way / eighth-way weight order.

    Given the weight range ``(low, high]`` of the ambiguous region,
    returns the lattice levels in the order Algorithm 4.3 fills memory:
    the halfway level first, then the halfway levels of each half, and
    so on (breadth-first binary subdivision).

    >>> layer_schedule(0, 5)
    [3, 1, 4, 2, 5]
    """
    if high <= low:
        return []
    order: List[int] = []
    seen: Set[int] = set()
    # A deque: the breadth-first subdivision pops from the front, and
    # ``list.pop(0)`` would shift the whole tail each time (O(n²) over
    # wide weight ranges).
    queue: Deque[Tuple[int, int]] = deque([(low, high)])
    while queue:
        a, b = queue.popleft()
        if b <= a:
            continue
        mid = math.ceil((a + b) / 2)
        if mid not in seen and a < mid <= high:
            seen.add(mid)
            order.append(mid)
        # Subdivide strictly: (a, mid-1] below, (mid, b] above.
        if mid - 1 > a:
            queue.append((a, mid - 1))
        if b > mid:
            queue.append((mid, b))
    # Any level not produced by subdivision (degenerate ranges) appended
    # in natural order so the schedule always covers (low, high].
    for level in range(low + 1, high + 1):
        if level not in seen:
            order.append(level)
    return order


def select_probe_batch(
    undecided: Set[Pattern],
    floor_weight: int,
    memory_capacity: Optional[int],
) -> List[Pattern]:
    """Choose the probes with the highest collapsing power.

    Patterns are drawn level by level following :func:`layer_schedule`
    over the ambiguous weight range, until *memory_capacity* counters
    are scheduled (or the region is exhausted).
    """
    if not undecided:
        return []
    by_weight: Dict[int, List[Pattern]] = {}
    for pattern in undecided:
        by_weight.setdefault(pattern.weight, []).append(pattern)
    high = max(by_weight)
    low = min(floor_weight, min(by_weight) - 1)
    batch: List[Pattern] = []
    budget = memory_capacity if memory_capacity is not None else len(undecided)
    for level in layer_schedule(low, high):
        for pattern in sorted(by_weight.get(level, [])):
            batch.append(pattern)
            if len(batch) >= budget:
                return batch
    return batch


def collapse_borders(
    database: AnySequenceDatabase,
    matrix: CompatibilityMatrix,
    min_match: float,
    classification: SampleClassification,
    memory_capacity: Optional[int] = None,
    engine: EngineSpec = None,
    tracer: Optional[Tracer] = None,
    lattice: Optional[str] = None,
) -> CollapseOutcome:
    """Resolve every ambiguous pattern with a minimal number of scans.

    Patterns the sample classified *frequent* are trusted (they hold
    with probability ``1 - δ`` each); patterns *infrequent* on the
    sample are trusted symmetrically.  Only the ambiguous band is probed
    against the full database, through the given match engine.

    When a *tracer* is supplied, each probe round opens a child span
    (``probe-round-1``, ``probe-round-2``, ...) recording its probe
    count, scan and the number of ambiguous patterns still undecided
    after label propagation.

    *lattice* selects the label-propagation path: ``"kernel"`` (the
    default) runs the round's pairwise subsumption sweep as a packed
    batch with the signature prefilter, ``"reference"`` keeps the
    original per-pattern loops.  Borders, labels and probe rounds are
    identical either way.
    """
    validate_memory_capacity(memory_capacity)
    tracer = ensure_tracer(tracer)
    kernels = use_kernels(lattice)
    engine = get_engine(engine)
    # A resident engine (a caller probing a memory-resident database)
    # wants same-parent siblings adjacent: the probe *selection* is
    # unchanged, only the within-round counting order, so probe rounds,
    # scans and labels are identical.
    resident_probes = isinstance(engine, ResidentSampleEvaluator)
    decided_frequent = classification.fqt.copy(tracer=tracer)
    minimal_infrequent: Set[Pattern] = set()
    undecided: Set[Pattern] = {
        pattern
        for pattern in classification.ambiguous_patterns()
        if not decided_frequent.covers(pattern)
    }
    floor_weight = min(
        (p.weight for p in decided_frequent), default=0
    )

    verified: Dict[Pattern, float] = {}
    probe_rounds: List[List[Pattern]] = []
    scans = 0
    while undecided:
        batch = select_probe_batch(undecided, floor_weight, memory_capacity)
        probe_rounds.append(batch)
        with tracer.phase(f"probe-round-{len(probe_rounds)}"):
            probes = sibling_order(batch) if resident_probes else batch
            matches = count_matches_batched(probes, database, matrix,
                                            engine=engine, tracer=tracer)
            scans += 1
            tracer.count(PROBE_ROUNDS, 1)
            tracer.count(PROBES, len(batch))
            newly_frequent: List[Pattern] = []
            newly_infrequent: List[Pattern] = []
            for pattern, value in matches.items():
                verified[pattern] = value
                if value >= min_match:
                    decided_frequent.add(pattern)
                    newly_frequent.append(pattern)
                else:
                    minimal_infrequent.add(pattern)
                    newly_infrequent.append(pattern)
            # Probed patterns are decided outright; the rest only need
            # checking against this round's new decisions (earlier rounds
            # already filtered against the older ones).
            undecided.difference_update(batch)
            if kernels:
                undecided = filter_undecided(
                    undecided, newly_frequent, newly_infrequent,
                    tracer=tracer,
                )
            else:
                undecided = {
                    pattern
                    for pattern in undecided
                    if not any(
                        pattern.is_subpattern_of(fresh)
                        for fresh in newly_frequent
                    )
                    and not any(
                        killer.is_subpattern_of(pattern)
                        for killer in newly_infrequent
                    )
                }
            tracer.annotate(AMBIGUOUS_REMAINING, len(undecided))
    return CollapseOutcome(
        border=decided_frequent,
        verified=verified,
        scans=scans,
        probe_rounds=probe_rounds,
    )
