"""Mining algorithms: the paper's three-phase border-collapsing miner
and the two baselines it is evaluated against (Max-Miner, sampling-based
level-wise search), plus the shared Chernoff and counting machinery."""

from .ambiguous import ambiguous_count, classify_on_sample
from .chernoff import (
    AMBIGUOUS,
    FREQUENT,
    INFREQUENT,
    chernoff_epsilon,
    classify_value,
    misclassification_tail,
    required_sample_size,
    restricted_spread,
)
from .collapsing import (
    CollapseOutcome,
    collapse_borders,
    layer_schedule,
    select_probe_batch,
)
from .counting import count_matches_batched, validate_memory_capacity
from .delta import (
    DeltaOutcome,
    MiningCheckpoint,
    create_checkpoint,
    delta_remine,
)
from .depthfirst import DepthFirstMiner
from .levelwise import LevelwiseMiner, mine_support
from .maxminer import MaxMiner
from .miner import BorderCollapsingMiner, mine_noisy_patterns
from .pincer import PincerMiner
from .result import LevelStats, MiningResult, SampleClassification
from .toivonen import ToivonenMiner
from .verify import VerificationReport, verify_result

__all__ = [
    "ambiguous_count",
    "classify_on_sample",
    "AMBIGUOUS",
    "FREQUENT",
    "INFREQUENT",
    "chernoff_epsilon",
    "classify_value",
    "misclassification_tail",
    "required_sample_size",
    "restricted_spread",
    "CollapseOutcome",
    "collapse_borders",
    "layer_schedule",
    "select_probe_batch",
    "count_matches_batched",
    "validate_memory_capacity",
    "DeltaOutcome",
    "MiningCheckpoint",
    "create_checkpoint",
    "delta_remine",
    "DepthFirstMiner",
    "LevelwiseMiner",
    "mine_support",
    "MaxMiner",
    "BorderCollapsingMiner",
    "mine_noisy_patterns",
    "PincerMiner",
    "LevelStats",
    "MiningResult",
    "SampleClassification",
    "ToivonenMiner",
    "VerificationReport",
    "verify_result",
]
