"""Pincer-search adapted to the match metric.

Lin & Kedem's Pincer-search — cited by the paper alongside Max-Miner as
the look-ahead family — runs the classical bottom-up level-wise search
while simultaneously maintaining a top-down *maximum frequent candidate
set* (MFCS): a small antichain of long patterns believed frequent.
Each scan counts both the current level's candidates and the MFCS
elements; a frequent MFCS element certifies its whole downward closure
at once, and an infrequent one is split into maximal subpatterns that
avoid the newly found infrequent pattern.

Sequence adaptation.  Itemset Pincer-search initialises the MFCS with
the single set of all items; for sequential patterns there is no "top"
element, so the MFCS is seeded after the first counted level by
suffix-prefix chaining of the frequent patterns (the same join used by
our Max-Miner adaptation), and the split step replaces an infrequent
MFCS element with its maximal subpatterns that remain supersets of some
current frequent pattern.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set


from ..core.border import Border
from ..core.compatibility import CompatibilityMatrix
from ..core.lattice import PatternConstraints, generate_candidates
from ..core.latticekernels import resolve_lattice
from ..core.pattern import Pattern
from ..core.sequence import AnySequenceDatabase
from ..engine import EngineSpec, get_engine
from ..errors import MiningError
from ..obs import (
    CANDIDATES_GENERATED,
    SCANS,
    Tracer,
    ensure_tracer,
    io_snapshot,
    record_io,
)
from .counting import count_matches_batched, validate_memory_capacity
from .result import LevelStats, MiningResult


class PincerMiner:
    """Bottom-up level-wise search with a top-down MFCS (look-ahead)."""

    algorithm = "pincer"

    def __init__(
        self,
        matrix: CompatibilityMatrix,
        min_match: float,
        constraints: Optional[PatternConstraints] = None,
        memory_capacity: Optional[int] = None,
        mfcs_limit: int = 12,
        collect_exact_matches: bool = True,
        engine: EngineSpec = None,
        tracer: Optional[Tracer] = None,
        lattice: Optional[str] = None,
    ):
        if not 0.0 < min_match <= 1.0:
            raise MiningError(f"min_match must lie in (0, 1], got {min_match}")
        if mfcs_limit < 0:
            raise MiningError(f"mfcs_limit must be >= 0, got {mfcs_limit}")
        validate_memory_capacity(memory_capacity)
        self.matrix = matrix
        self.min_match = min_match
        self.constraints = constraints or PatternConstraints()
        self.memory_capacity = memory_capacity
        self.mfcs_limit = mfcs_limit
        self.collect_exact_matches = collect_exact_matches
        self.engine = get_engine(engine)
        self.tracer = ensure_tracer(tracer)
        self.lattice = resolve_lattice(lattice)

    def mine(self, database: AnySequenceDatabase) -> MiningResult:
        started = time.perf_counter()
        scans_before = database.scan_count
        tracer = self.tracer
        tracer.note("lattice", self.lattice)

        with tracer.phase("phase1-scan"):
            io_before = io_snapshot(database)
            symbol_match = self.engine.symbol_matches(
                database, self.matrix, tracer=tracer
            )  # one scan
            tracer.count(SCANS, 1)
            record_io(tracer, database, io_before)
        frequent_symbols = [
            d
            for d in range(self.matrix.size)
            if symbol_match[d] >= self.min_match
        ]
        frequent: Dict[Pattern, float] = {
            Pattern.single(d): float(symbol_match[d])
            for d in frequent_symbols
        }
        maximal = Border(frequent, lattice=self.lattice, tracer=tracer)
        mfcs: Set[Pattern] = set()
        level_stats = [
            LevelStats(1, self.matrix.size, len(frequent_symbols))
        ]
        skipped: Set[Pattern] = set()
        current: Set[Pattern] = set(frequent)
        level = 1
        mfcs_hits = 0
        while current and level < self.constraints.max_weight:
            candidates = generate_candidates(
                current | skipped, frequent_symbols, self.constraints,
                lattice=self.lattice, tracer=tracer,
            )
            if not candidates:
                break
            level += 1
            with tracer.phase(f"level-{level}"):
                tracer.count(CANDIDATES_GENERATED, len(candidates))
                covered = {c for c in candidates if maximal.covers(c)}
                to_count = sorted(candidates - covered)
                probes = sorted(mfcs - set(to_count))
                matches = count_matches_batched(
                    to_count + probes,
                    database,
                    self.matrix,
                    self.memory_capacity,
                    engine=self.engine,
                    tracer=tracer,
                )
                survivors: Set[Pattern] = set()
                for pattern in to_count:
                    if matches[pattern] >= self.min_match:
                        frequent[pattern] = matches[pattern]
                        survivors.add(pattern)
                        maximal.add(pattern)
                for probe in probes:
                    if matches[probe] >= self.min_match:
                        mfcs_hits += 1
                        frequent[probe] = matches[probe]
                        maximal.add(probe)
                        mfcs.discard(probe)
                    else:
                        mfcs = self._split_mfcs(mfcs, probe, survivors)
            level_stats.append(
                LevelStats(
                    level, len(candidates), len(survivors) + len(covered)
                )
            )
            mfcs = self._refresh_mfcs(mfcs, survivors, frequent)
            skipped = covered
            current = survivors

        if self.collect_exact_matches:
            missing = [
                pattern
                for pattern in maximal.downward_closure()
                if pattern not in frequent
                and self.constraints.admits(pattern)
            ]
            if missing:
                with tracer.phase("fill-matches"):
                    frequent.update(
                        count_matches_batched(
                            sorted(missing),
                            database,
                            self.matrix,
                            self.memory_capacity,
                            engine=self.engine,
                            tracer=tracer,
                        )
                    )

        scans = database.scan_count - scans_before
        elapsed = time.perf_counter() - started
        return MiningResult(
            frequent=frequent,
            border=Border(frequent, lattice=self.lattice, tracer=tracer),
            scans=scans,
            elapsed_seconds=elapsed,
            level_stats=level_stats,
            extras={
                "symbol_match": symbol_match,
                "mfcs_hits": mfcs_hits,
            },
            report=tracer.report(
                algorithm=self.algorithm,
                engine=self.engine.name,
                scans=scans,
                elapsed_seconds=elapsed,
            ),
        )

    # -- MFCS maintenance --------------------------------------------------------

    def _refresh_mfcs(
        self,
        mfcs: Set[Pattern],
        survivors: Set[Pattern],
        frequent: Dict[Pattern, float],
    ) -> Set[Pattern]:
        """Re-seed the MFCS by chaining the current level's survivors."""
        if not survivors or self.mfcs_limit == 0:
            return set()
        successors: Dict[tuple, List[Pattern]] = {}
        for pattern in survivors:
            successors.setdefault(pattern.elements[:-1], []).append(pattern)
        for options in successors.values():
            options.sort(key=lambda p: -frequent.get(p, 0.0))
        ranked = sorted(survivors, key=lambda p: -frequent.get(p, 0.0))
        fresh: Set[Pattern] = set()
        for pattern in ranked[: self.mfcs_limit]:
            chained = self._chain(pattern, successors)
            if chained.weight > pattern.weight:
                fresh.add(chained)
        # Keep surviving old elements that are still meaningful.
        fresh |= {p for p in mfcs if p.weight > max(
            s.weight for s in survivors
        )}
        return set(sorted(fresh)[: self.mfcs_limit])

    def _chain(
        self, pattern: Pattern, successors: Dict[tuple, List[Pattern]]
    ) -> Pattern:
        elements = list(pattern.elements)
        overlap = len(elements) - 1
        weight = pattern.weight
        seen = {tuple(elements)}
        while (
            weight < self.constraints.max_weight
            and len(elements) < self.constraints.max_span
        ):
            key = tuple(elements[len(elements) - overlap :])
            options = successors.get(key)
            if not options:
                break
            extended = None
            for option in options:
                candidate = tuple(elements) + (option.elements[-1],)
                if candidate not in seen:
                    extended = candidate
                    break
            if extended is None:
                break
            seen.add(extended)
            elements = list(extended)
            weight += 1
        return Pattern(elements)

    def _split_mfcs(
        self,
        mfcs: Set[Pattern],
        infrequent: Pattern,
        survivors: Set[Pattern],
    ) -> Set[Pattern]:
        """Pincer split: replace an infrequent MFCS element with its
        maximal subpatterns that still extend a current survivor."""
        result = set(mfcs)
        result.discard(infrequent)
        if infrequent.weight <= 2:
            return result
        for sub in infrequent.immediate_subpatterns():
            if not self.constraints.admits(sub):
                continue
            if any(s.is_subpattern_of(sub) for s in survivors):
                result.add(sub)
        return set(sorted(result)[: self.mfcs_limit])
