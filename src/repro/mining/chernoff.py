"""Chernoff/Hoeffding bound machinery (Section 4, Claims 4.1 and 4.2).

For a random variable with spread ``R`` observed ``n`` times, the
additive Chernoff bound states that with probability ``1 - delta`` the
true mean lies within

.. math::

    \\epsilon = \\sqrt{\\frac{R^2 \\ln(1/\\delta)}{2n}}

of the sample mean.  Applied to the match of a pattern over a uniform
sample of sequences, this classifies each pattern as *frequent*
(sample match above ``min_match + ε``), *infrequent* (below
``min_match - ε``) or *ambiguous* (inside the band).

Claim 4.2's **restricted spread** tightens the band: by the Apriori
property the match of a pattern can never exceed the smallest match of
its individual symbols, so ``R = min_i match[d_i]`` replaces the default
``R = 1`` and shrinks ``ε`` proportionally — the five-fold pruning of
ambiguous patterns measured in Figure 11.
"""

from __future__ import annotations

import math
from typing import Sequence


from ..errors import MiningError
from ..core.pattern import Pattern

#: Labels assigned to patterns by the sample classification.
FREQUENT = "frequent"
AMBIGUOUS = "ambiguous"
INFREQUENT = "infrequent"


def chernoff_epsilon(spread: float, delta: float, n: int) -> float:
    """The half-width ``ε`` of the Chernoff confidence band.

    Parameters
    ----------
    spread:
        The spread ``R`` of the random variable (max minus min possible
        value); for a raw match this is 1, for a pattern with known
        per-symbol matches it is the restricted spread of Claim 4.2.
    delta:
        The allowed failure probability (confidence is ``1 - delta``).
    n:
        Number of independent observations (sample size).

    >>> round(chernoff_epsilon(1.0, 1e-4, 10000), 4)
    0.0215
    """
    if not 0.0 < delta < 1.0:
        raise MiningError(f"delta must lie in (0, 1), got {delta}")
    if n <= 0:
        raise MiningError(f"sample size must be positive, got {n}")
    if spread < 0.0:
        raise MiningError(f"spread must be non-negative, got {spread}")
    return math.sqrt(spread * spread * math.log(1.0 / delta) / (2.0 * n))


def required_sample_size(spread: float, delta: float, epsilon: float) -> int:
    """Smallest ``n`` for which the Chernoff band is at most ``epsilon``.

    The planning inverse of :func:`chernoff_epsilon`, useful to size the
    Phase-1 reservoir from a memory budget and a target band.
    """
    if epsilon <= 0.0:
        raise MiningError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise MiningError(f"delta must lie in (0, 1), got {delta}")
    if spread < 0.0:
        raise MiningError(f"spread must be non-negative, got {spread}")
    if spread == 0.0:
        return 1
    return int(
        math.ceil(spread * spread * math.log(1.0 / delta) / (2.0 * epsilon**2))
    )


def restricted_spread(
    pattern: Pattern, symbol_match: Sequence[float]
) -> float:
    """Claim 4.2: ``R = min over pattern symbols of match[d]``.

    *symbol_match* is the Phase-1 per-symbol match vector over the full
    database; the match of the pattern cannot exceed the smallest entry
    among its symbols, so the spread of its match is at most that value.
    """
    values = [float(symbol_match[symbol]) for symbol in pattern.symbol_set]
    if not values:
        raise MiningError("pattern has no fixed symbols")
    return min(values)


def classify_value(
    sample_match: float, min_match: float, epsilon: float
) -> str:
    """Claim 4.1: classify one sample match against the threshold band.

    Returns one of :data:`FREQUENT`, :data:`AMBIGUOUS`, :data:`INFREQUENT`.
    """
    if sample_match > min_match + epsilon:
        return FREQUENT
    if sample_match < min_match - epsilon:
        return INFREQUENT
    return AMBIGUOUS


def misclassification_tail(delta: float, rho_multiples: float) -> float:
    """Probability bound that a mislabeled pattern's real match exceeds
    the threshold by more than ``rho_multiples`` band-widths.

    Section 4's analysis: ``P(dis(P) > 2ρ) = P(dis(P) > ρ)^4`` — the
    tail decays exponentially (quartically per doubling), which is why
    almost all missed patterns sit just above the threshold (Figure 13).
    """
    if rho_multiples < 0:
        raise MiningError("rho_multiples must be non-negative")
    return float(delta ** (rho_multiples * rho_multiples))
