"""Delta remining: refresh a mined border after an append, in O(Δ).

The paper's match metric is a mean over sequences, which makes mining
naturally incremental: after appending Δ sequences to a database of N,
every pattern's new match is

    M'(P) = (S(P) + s(P)) / (N + Δ)

where ``S(P) = M(P, D) · N`` is the pattern's *match sum* over the old
store and ``s(P)`` its match sum over the appended delta alone.  A
:class:`MiningCheckpoint` persists exactly the sums a refresh needs —
the per-symbol Phase-1 sums, the border elements with their exact
sums, and N — so an append is absorbed by scanning only the delta:

* **survivors / fallen** — one delta pass yields ``s(P)`` for every
  checkpointed border element, hence its new match *exactly*.
  Elements still at or above ``min_match`` keep their proof; fallen
  elements shrink, and only their sub-lattice cones are re-probed
  (top-down, batched against the full store) to find the new maximal
  frequent patterns beneath them.  Everything covered by a surviving
  element needs no work at all: match is anti-monotone, so a
  subpattern of a still-frequent pattern is still frequent.

* **upward crossers** — a pattern outside the old frequent set has
  old sum ``S(P) < min_match · N`` (the checkpointed run is exact at
  the border), so

      M'(P) = (S(P) + s(P)) / (N + Δ)
            < (min_match · N + s(P)) / (N + Δ)

  which reaches ``min_match`` only if ``s(P) ≥ min_match · Δ`` — the
  pattern must be frequent *on the delta alone*.  Exact level-wise
  mining of just the Δ appended sequences (in memory, no full-store
  scans) therefore enumerates every possible upward crosser; the few
  candidates it yields are verified exactly against the full store.

Both probe directions are batched through
:func:`~repro.mining.counting.count_matches_batched`, so the refresh
honours the same memory budget and scan accounting as every miner.
When the border is unchanged by the append — the common case for
small deltas — the refresh performs **zero** full-store scans.

The refreshed border is exact, and therefore identical to what a
from-scratch exact run over the grown store would report; the
``bench_delta`` gate pins this bit-identity alongside the ≥10x
refresh speedup.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.border import Border
from ..core.compatibility import CompatibilityMatrix
from ..core.lattice import PatternConstraints
from ..core.latticekernels import resolve_lattice
from ..core.pattern import Pattern
from ..core.sequence import SequenceDatabase
from ..engine import EngineSpec, get_engine
from ..errors import MiningError
from ..io.segments import SegmentedSequenceStore
from ..obs import (
    BORDER_REPROBES,
    DELTA_PATTERNS_COUNTED,
    DELTA_SCANS,
    Tracer,
    ensure_tracer,
)
from .counting import count_matches_batched, validate_memory_capacity
from .levelwise import LevelwiseMiner
from .result import MiningResult, _pattern_from_string

CHECKPOINT_FORMAT = "noisymine-checkpoint"
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class MiningCheckpoint:
    """The compact state a delta refresh resumes from.

    Sums, not means: sums add across segments, means do not.  All sums
    are exact over the ``n_sequences`` sequences of the store state
    identified by ``store_digest`` / ``segment_digests``.

    Attributes
    ----------
    store_digest:
        Manifest digest of the segmented store the checkpoint was
        taken on.
    segment_digests:
        The store's ordered segment digests at checkpoint time; a
        refresh requires them to be a prefix of the current store's
        (same lineage, append-only growth).
    n_sequences:
        N — the number of sequences the sums are taken over.
    min_match:
        The threshold the border was mined at.  A checkpoint proves
        one border at one threshold; refreshing at a different
        threshold must fall back to a full run.
    symbol_sums:
        Per-symbol Phase-1 match sums, index ``d`` →
        ``M(⟨d⟩, D) · N``.
    border_sums:
        Exact match sum for every border element.
    config_key:
        :meth:`repro.config.MiningConfig.to_key` of the producing run
        (``None`` for checkpoints built outside the config layer);
        refresh rejects a checkpoint taken under a different semantic
        config.
    sample_planes_key:
        Content key of the Phase-2 resident sample planes of the
        producing run, when it ran with the resident evaluator — lets
        a warm daemon re-pin the same planes after a refresh.  Purely
        advisory; ``None`` otherwise.
    """

    store_digest: str
    segment_digests: Tuple[str, ...]
    n_sequences: int
    min_match: float
    symbol_sums: Tuple[float, ...]
    border_sums: Dict[Pattern, float] = field(default_factory=dict)
    config_key: Optional[str] = None
    sample_planes_key: Optional[str] = None

    def border(self) -> Border:
        """The checkpointed border as an antichain."""
        return Border(self.border_sums)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "store_digest": self.store_digest,
            "segment_digests": list(self.segment_digests),
            "n_sequences": self.n_sequences,
            "min_match": self.min_match,
            "symbol_sums": list(self.symbol_sums),
            "border_sums": {
                pattern.to_string(): value
                for pattern, value in sorted(self.border_sums.items())
            },
            "config_key": self.config_key,
            "sample_planes_key": self.sample_planes_key,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MiningCheckpoint":
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise MiningError("not a mining checkpoint payload")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise MiningError(
                f"unsupported checkpoint version {payload.get('version')!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        return cls(
            store_digest=str(payload["store_digest"]),
            segment_digests=tuple(payload["segment_digests"]),
            n_sequences=int(payload["n_sequences"]),
            min_match=float(payload["min_match"]),
            symbol_sums=tuple(
                float(v) for v in payload["symbol_sums"]
            ),
            border_sums={
                _pattern_from_string(text): float(value)
                for text, value in payload["border_sums"].items()
            },
            config_key=payload.get("config_key"),
            sample_planes_key=payload.get("sample_planes_key"),
        )

    def save(self, path) -> None:
        """Write the checkpoint as JSON (atomic replace)."""
        path = os.fspath(path)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path) -> "MiningCheckpoint":
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise MiningError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise MiningError(
                f"{path}: corrupt checkpoint (bad JSON: {exc})"
            ) from exc
        return cls.from_dict(payload)


def create_checkpoint(
    result: MiningResult,
    store: SegmentedSequenceStore,
    matrix: CompatibilityMatrix,
    min_match: float,
    config_key: Optional[str] = None,
    memory_capacity: Optional[int] = None,
    engine: EngineSpec = None,
    tracer: Optional[Tracer] = None,
) -> MiningCheckpoint:
    """Distil a full run's result into a refreshable checkpoint.

    The checkpoint needs *exact* border sums.  Values already exact in
    the result are reused: everything from an exact miner (levelwise,
    maxminer, pincer, depthfirst) and the Phase-3-verified patterns of
    a sampling miner (``extras["verified"]``).  Border elements whose
    result value is only a sample estimate are re-counted against the
    full store in one batched pass — a one-time cost at checkpoint
    creation, not per refresh.
    """
    tracer = ensure_tracer(tracer)
    n = len(store)
    symbol_match = result.extras.get("symbol_match")
    if symbol_match is None:
        raise MiningError(
            "result carries no symbol_match extras; checkpoints need the "
            "Phase-1 per-symbol matches"
        )
    symbol_sums = tuple(
        float(symbol_match[d]) * n for d in range(matrix.size)
    )
    verified = result.extras.get("verified")
    exact: Dict[Pattern, float]
    if verified is not None:
        # Sampling miner: only the Phase-3-probed values are exact.
        exact = dict(verified)
    else:
        # Exact miner: every reported match is a full-database value.
        exact = dict(result.frequent)
    elements = list(result.border.elements)
    missing = [p for p in elements if p not in exact]
    if missing:
        exact.update(
            count_matches_batched(
                missing, store, matrix, memory_capacity,
                engine=engine, tracer=tracer,
            )
        )
    border_sums = {p: exact[p] * n for p in elements}
    return MiningCheckpoint(
        store_digest=store.digest,
        segment_digests=store.segment_digests,
        n_sequences=n,
        min_match=float(min_match),
        symbol_sums=symbol_sums,
        border_sums=border_sums,
        config_key=config_key,
        sample_planes_key=result.extras.get("sample_planes_key"),
    )


@dataclass
class DeltaOutcome:
    """What a refresh did, alongside its result.

    ``result.border`` is exact for the grown store; ``result.frequent``
    maps every pattern whose match the refresh established *exactly*
    (border elements, probed patterns, verified crossers, frequent
    single symbols) — by design it does not materialise the full
    downward closure the way a from-scratch run does.
    """

    result: MiningResult
    checkpoint: MiningCheckpoint
    delta_sequences: int
    full_scans: int
    reprobed: int
    crosser_candidates: int


def _delta_database(
    segments: Sequence,
) -> Tuple[SequenceDatabase, List[np.ndarray]]:
    """Materialise the appended segments as one in-memory database.

    The delta is what a refresh is allowed to hold in memory — the
    same O(Δ) budget the Phase-2 sample occupies in a full run.
    """
    ids: List[int] = []
    rows: List[np.ndarray] = []
    for segment in segments:
        row_views = segment.rows_slice(0, len(segment))
        for sid, row in zip(segment.ids, row_views):
            ids.append(sid)
            rows.append(np.array(row, copy=True))
    return SequenceDatabase(rows, ids=ids), rows


def delta_remine(
    store: SegmentedSequenceStore,
    matrix: CompatibilityMatrix,
    checkpoint: MiningCheckpoint,
    constraints: Optional[PatternConstraints] = None,
    memory_capacity: Optional[int] = None,
    engine: EngineSpec = None,
    tracer: Optional[Tracer] = None,
    lattice: Optional[str] = None,
    config_key: Optional[str] = None,
) -> DeltaOutcome:
    """Refresh *checkpoint* against the grown *store*; exact border out.

    Raises :class:`MiningError` when the checkpoint does not transfer:
    different store lineage (its segments are not a prefix of the
    store's), or a different semantic config (``config_key``
    mismatch when both sides carry one).
    """
    started = time.perf_counter()
    tracer = ensure_tracer(tracer)
    validate_memory_capacity(memory_capacity)
    engine = get_engine(engine)
    lattice = resolve_lattice(lattice)
    constraints = constraints or PatternConstraints()
    min_match = checkpoint.min_match
    if (
        config_key is not None
        and checkpoint.config_key is not None
        and config_key != checkpoint.config_key
    ):
        raise MiningError(
            "checkpoint was taken under a different mining config; "
            "delta refresh would not reproduce a from-scratch run "
            "(rerun a full mine to re-checkpoint)"
        )
    if len(matrix.array) != len(checkpoint.symbol_sums):
        raise MiningError(
            f"checkpoint alphabet size {len(checkpoint.symbol_sums)} does "
            f"not match the compatibility matrix ({matrix.size})"
        )
    delta_segments = store.segments_after(checkpoint.segment_digests)
    n_old = checkpoint.n_sequences
    n_new = len(store)
    n_delta = n_new - n_old
    scans_before = store.scan_count
    tracer.note("delta_sequences", n_delta)

    if not delta_segments:
        # Nothing appended: the checkpoint *is* the answer.
        frequent = {
            p: s / n_old for p, s in checkpoint.border_sums.items()
        }
        result = MiningResult(
            frequent=frequent,
            border=Border(checkpoint.border_sums, lattice=lattice,
                          tracer=tracer),
            scans=0,
            elapsed_seconds=time.perf_counter() - started,
            extras={"delta_sequences": 0, "reprobed": 0,
                    "crosser_candidates": 0},
            report=tracer.report(
                algorithm="delta-remine", engine=engine.name, scans=0,
                elapsed_seconds=time.perf_counter() - started,
            ),
        )
        return DeltaOutcome(result, checkpoint, 0, 0, 0, 0)

    # -- O(Δ) phase: everything below touches only the appended rows. --
    with tracer.phase("delta-scan"):
        delta_db, delta_rows = _delta_database(delta_segments)
        delta_symbol = engine.symbol_matches_rows(delta_rows, matrix)
        tracer.count(DELTA_SCANS, 1)
        new_symbol_sums = tuple(
            old + float(delta_symbol[d]) * n_delta
            for d, old in enumerate(checkpoint.symbol_sums)
        )
        symbol_match_new = {
            d: s / n_new for d, s in enumerate(new_symbol_sums)
        }
        old_elements = list(checkpoint.border_sums)
        delta_matches = count_matches_batched(
            old_elements, delta_db, matrix, memory_capacity,
            engine=engine, tracer=tracer,
            scan_counter=DELTA_SCANS,
            patterns_counter=DELTA_PATTERNS_COUNTED,
        )

    exact_new: Dict[Pattern, float] = {}
    for pattern in old_elements:
        s_new = (
            checkpoint.border_sums[pattern]
            + delta_matches[pattern] * n_delta
        )
        exact_new[pattern] = s_new / n_new
    for d, value in symbol_match_new.items():
        exact_new[Pattern.single(d)] = value
    survivors = [p for p in old_elements if exact_new[p] >= min_match]
    fallen = [p for p in old_elements if exact_new[p] < min_match]
    tracer.note("border_survivors", len(survivors))
    tracer.note("border_fallen", len(fallen))

    old_border = Border(old_elements, lattice=lattice)
    new_border = Border(survivors, lattice=lattice, tracer=tracer)
    reprobed = 0

    # -- Downward: re-probe only the fallen elements' cones. ----------
    # Top-down BFS: the first frequent pattern on each path is maximal
    # in its chain; Border.add keeps the overall antichain invariant.
    with tracer.phase("delta-fallen-probe"):
        visited: Set[Pattern] = set()
        frontier: Set[Pattern] = set()
        for pattern in fallen:
            frontier.update(pattern.immediate_subpatterns())
        while frontier:
            frontier -= visited
            visited |= frontier
            expand: Set[Pattern] = set()
            to_count: List[Pattern] = []
            for pattern in sorted(frontier):
                if new_border.covers(pattern):
                    continue  # provably frequent under a survivor
                if not constraints.admits(pattern):
                    # Outside the mined pattern space (a gap bound can
                    # exclude a subpattern); its own subpatterns may
                    # still be border material.
                    expand.update(pattern.immediate_subpatterns())
                    continue
                if pattern.weight == 1:
                    # Known exactly from the refreshed Phase-1 sums.
                    symbol = pattern.elements[0]
                    if symbol_match_new[symbol] >= min_match:
                        new_border.add(pattern)
                    continue
                to_count.append(pattern)
            if to_count:
                reprobed += len(to_count)
                tracer.count(BORDER_REPROBES, len(to_count))
                counted = count_matches_batched(
                    to_count, store, matrix, memory_capacity,
                    engine=engine, tracer=tracer,
                )
                exact_new.update(counted)
                for pattern in sorted(to_count):
                    if counted[pattern] >= min_match:
                        new_border.add(pattern)
                    else:
                        expand.update(pattern.immediate_subpatterns())
            frontier = expand

    # Weight-1 upward crossers need no delta mining: every single's new
    # match is already exact from the refreshed Phase-1 sums.
    for d in range(matrix.size):
        single = Pattern.single(d)
        if (
            symbol_match_new[d] >= min_match
            and constraints.admits(single)
            and not new_border.covers(single)
        ):
            new_border.add(single)

    # -- Upward: only delta-frequent patterns can cross min_match. ----
    with tracer.phase("delta-crosser-mine"):
        delta_scans_before = delta_db.scan_count
        crosser_run = LevelwiseMiner(
            matrix, min_match, constraints=constraints,
            memory_capacity=memory_capacity, engine=engine,
            lattice=lattice,
        ).mine(delta_db)
        tracer.count(DELTA_SCANS,
                     delta_db.scan_count - delta_scans_before)
        suspects = sorted(
            (
                p for p in crosser_run.frequent
                if p.weight > 1 and not old_border.covers(p)
            ),
            key=lambda p: (-p.weight, p),
        )
    tracer.note("crosser_candidates", len(suspects))

    with tracer.phase("delta-crosser-verify"):
        to_verify = [p for p in suspects if not new_border.covers(p)]
        if to_verify:
            counted = count_matches_batched(
                to_verify, store, matrix, memory_capacity,
                engine=engine, tracer=tracer,
            )
            exact_new.update(counted)
            for pattern in sorted(to_verify, key=lambda p: (-p.weight, p)):
                if counted[pattern] >= min_match:
                    new_border.add(pattern)

    frequent = {
        p: v for p, v in exact_new.items()
        if v >= min_match and new_border.covers(p)
    }
    full_scans = store.scan_count - scans_before
    elapsed = time.perf_counter() - started
    result = MiningResult(
        frequent=frequent,
        border=new_border,
        scans=full_scans,
        elapsed_seconds=elapsed,
        extras={
            "symbol_match": np.array(
                [symbol_match_new[d] for d in range(matrix.size)]
            ),
            "delta_sequences": n_delta,
            "reprobed": reprobed,
            "crosser_candidates": len(suspects),
            "border_fallen": len(fallen),
            "border_survivors": len(survivors),
        },
        report=tracer.report(
            algorithm="delta-remine", engine=engine.name,
            scans=full_scans, elapsed_seconds=elapsed,
        ),
    )
    refreshed = MiningCheckpoint(
        store_digest=store.digest,
        segment_digests=store.segment_digests,
        n_sequences=n_new,
        min_match=min_match,
        symbol_sums=new_symbol_sums,
        border_sums={
            p: exact_new[p] * n_new for p in new_border.elements
        },
        config_key=(
            config_key if config_key is not None
            else checkpoint.config_key
        ),
        sample_planes_key=checkpoint.sample_planes_key,
    )
    return DeltaOutcome(
        result=result,
        checkpoint=refreshed,
        delta_sequences=n_delta,
        full_scans=full_scans,
        reprobed=reprobed,
        crosser_candidates=len(suspects),
    )


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "DeltaOutcome",
    "MiningCheckpoint",
    "create_checkpoint",
    "delta_remine",
]
