"""Max-Miner adapted to the match metric (the paper's deterministic
baseline, Figure 14).

Bayardo's Max-Miner accelerates long-pattern mining by *look-ahead*:
alongside the candidates of the current level it also counts, for each
candidate group, the longest pattern in the group's subtree; when that
long pattern turns out frequent, the whole subtree is known frequent
without examining it level by level.

Adaptation to sequential patterns.  Our candidate tree is rightward
extension (a node's children append one symbol after an optional
wildcard gap), so a "candidate group" is a pattern plus its viable
extensions.  The look-ahead probe for a node is the *longest pattern
consistent with the current frequent level under the Apriori property*:
survivors of level ``k`` that overlap by ``k-1`` elements are chained
(suffix-prefix join, the sequence analogue of counting
``head(g) ∪ tail(g)``), greedily following the highest-match successor.
When a probe is frequent, all its subpatterns are frequent by the
Apriori property, so entire levels of candidates are skipped; that is
where the scan savings come from.

As in the original, look-ahead discovers the *maximal* frequent patterns
cheaply; per-pattern match values for the skipped interior are filled in
by one final batched pass when ``collect_exact_matches`` is set (the
default, so results are directly comparable with the exact level-wise
miner in tests).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set


from ..core.border import Border
from ..core.compatibility import CompatibilityMatrix
from ..core.lattice import (
    PatternConstraints,
    generate_candidates,
)
from ..core.latticekernels import resolve_lattice
from ..core.pattern import Pattern
from ..core.sequence import AnySequenceDatabase
from ..engine import EngineSpec, get_engine
from ..errors import MiningError
from ..obs import (
    CANDIDATES_GENERATED,
    SCANS,
    Tracer,
    ensure_tracer,
    io_snapshot,
    record_io,
)
from .counting import count_matches_batched, validate_memory_capacity
from .result import LevelStats, MiningResult


class MaxMiner:
    """Look-ahead mining of frequent patterns under the match metric.

    Parameters mirror :class:`~repro.mining.levelwise.LevelwiseMiner`;
    ``lookahead_per_level`` bounds how many greedy probes are counted
    per level (each probe is one extra counter in the scan batch).
    """

    algorithm = "maxminer"

    def __init__(
        self,
        matrix: CompatibilityMatrix,
        min_match: float,
        constraints: Optional[PatternConstraints] = None,
        memory_capacity: Optional[int] = None,
        lookahead_per_level: int = 16,
        collect_exact_matches: bool = True,
        engine: EngineSpec = None,
        tracer: Optional[Tracer] = None,
        lattice: Optional[str] = None,
    ):
        if not 0.0 < min_match <= 1.0:
            raise MiningError(f"min_match must lie in (0, 1], got {min_match}")
        if lookahead_per_level < 0:
            raise MiningError(
                f"lookahead_per_level must be >= 0, got {lookahead_per_level}"
            )
        validate_memory_capacity(memory_capacity)
        self.matrix = matrix
        self.min_match = min_match
        self.constraints = constraints or PatternConstraints()
        self.memory_capacity = memory_capacity
        self.lookahead_per_level = lookahead_per_level
        self.collect_exact_matches = collect_exact_matches
        self.engine = get_engine(engine)
        self.tracer = ensure_tracer(tracer)
        self.lattice = resolve_lattice(lattice)

    def mine(self, database: AnySequenceDatabase) -> MiningResult:
        started = time.perf_counter()
        scans_before = database.scan_count
        tracer = self.tracer
        tracer.note("lattice", self.lattice)

        with tracer.phase("phase1-scan"):
            io_before = io_snapshot(database)
            symbol_match = self.engine.symbol_matches(
                database, self.matrix, tracer=tracer
            )  # one scan
            tracer.count(SCANS, 1)
            record_io(tracer, database, io_before)
        frequent_symbols = [
            d
            for d in range(self.matrix.size)
            if symbol_match[d] >= self.min_match
        ]
        frequent: Dict[Pattern, float] = {
            Pattern.single(d): float(symbol_match[d])
            for d in frequent_symbols
        }
        maximal = Border(frequent, lattice=self.lattice, tracer=tracer)
        skipped: Set[Pattern] = set()  # frequent via look-ahead, not counted
        level_stats = [
            LevelStats(1, self.matrix.size, len(frequent_symbols))
        ]

        current: Set[Pattern] = set(frequent)
        level = 1
        probes_hit = 0
        while current and level < self.constraints.max_weight:
            candidates = generate_candidates(
                current | skipped, frequent_symbols, self.constraints,
                lattice=self.lattice, tracer=tracer,
            )
            if not candidates:
                break
            level += 1
            with tracer.phase(f"level-{level}"):
                tracer.count(CANDIDATES_GENERATED, len(candidates))
                # Look-ahead savings: candidates already covered by a
                # frequent probe need no counter this round.
                covered = {c for c in candidates if maximal.covers(c)}
                to_count = sorted(candidates - covered)
                probes = self._lookahead_probes(current, frequent, maximal)
                matches = count_matches_batched(
                    to_count + probes,
                    database,
                    self.matrix,
                    self.memory_capacity,
                    engine=self.engine,
                    tracer=tracer,
                )
                survivors: Set[Pattern] = set()
                for pattern in to_count:
                    value = matches[pattern]
                    if value >= self.min_match:
                        frequent[pattern] = value
                        survivors.add(pattern)
                        maximal.add(pattern)
                for probe in probes:
                    value = matches[probe]
                    if value >= self.min_match:
                        probes_hit += 1
                        frequent[probe] = value
                        maximal.add(probe)
            level_stats.append(
                LevelStats(level, len(candidates), len(survivors) + len(covered))
            )
            skipped = covered
            current = survivors

        if self.collect_exact_matches:
            with tracer.phase("fill-matches"):
                frequent.update(
                    self._fill_covered_matches(
                        database, maximal, frequent, tracer
                    )
                )

        scans = database.scan_count - scans_before
        elapsed = time.perf_counter() - started
        return MiningResult(
            frequent=frequent,
            border=Border(frequent, lattice=self.lattice, tracer=tracer),
            scans=scans,
            elapsed_seconds=elapsed,
            level_stats=level_stats,
            extras={
                "symbol_match": symbol_match,
                "lookahead_hits": probes_hit,
            },
            report=tracer.report(
                algorithm=self.algorithm,
                engine=self.engine.name,
                scans=scans,
                elapsed_seconds=elapsed,
            ),
        )

    # -- internals --------------------------------------------------------------

    def _lookahead_probes(
        self,
        current: Set[Pattern],
        frequent: Dict[Pattern, float],
        maximal: Border,
    ) -> List[Pattern]:
        """Chain overlapping survivors into long probes.

        A survivor ``Q`` continues ``P`` when ``Q``'s first ``k-1``
        elements equal ``P``'s last ``k-1`` elements; following the
        highest-match continuation from each of the best survivors
        yields the longest patterns the current level could support.
        """
        if self.lookahead_per_level == 0 or not current:
            return []
        successors: Dict[tuple, List[Pattern]] = {}
        for pattern in current:
            successors.setdefault(pattern.elements[:-1], []).append(pattern)
        for options in successors.values():
            options.sort(key=lambda p: -frequent.get(p, 0.0))
        ranked = sorted(current, key=lambda p: -frequent.get(p, 0.0))
        probes: List[Pattern] = []
        for pattern in ranked[: self.lookahead_per_level]:
            probe = self._chain_extend(pattern, successors)
            if probe.weight > pattern.weight and not maximal.covers(probe):
                probes.append(probe)
        return list(dict.fromkeys(probes))

    def _chain_extend(
        self,
        pattern: Pattern,
        successors: Dict[tuple, List[Pattern]],
    ) -> Pattern:
        """Follow suffix-prefix joins greedily to the structural bounds."""
        elements = list(pattern.elements)
        overlap = len(pattern.elements) - 1
        weight = pattern.weight
        visited = {tuple(elements)}
        while (
            weight < self.constraints.max_weight
            and len(elements) < self.constraints.max_span
        ):
            key = tuple(elements[len(elements) - overlap :])
            options = successors.get(key)
            if not options:
                break
            extended = None
            for option in options:
                candidate = tuple(elements) + (option.elements[-1],)
                if candidate not in visited:
                    extended = candidate
                    break
            if extended is None:
                break
            visited.add(extended)
            elements = list(extended)
            weight += 1
        return Pattern(elements)

    def _fill_covered_matches(
        self,
        database: AnySequenceDatabase,
        maximal: Border,
        known: Dict[Pattern, float],
        tracer: Tracer,
    ) -> Dict[Pattern, float]:
        """One batched pass for patterns frequent-by-coverage but never
        individually counted (so results match the exact miner)."""
        missing = [
            pattern
            for pattern in maximal.downward_closure()
            if pattern not in known and self.constraints.admits(pattern)
        ]
        if not missing:
            return {}
        return count_matches_batched(
            sorted(missing), database, self.matrix, self.memory_capacity,
            engine=self.engine, tracer=tracer,
        )
