"""The paper's end-to-end algorithm: sampling + border collapsing.

:class:`BorderCollapsingMiner` chains the three phases of Section 4:

1. one database scan computes the match of every individual symbol and
   draws a uniform random sample (Algorithm 4.1);
2. an in-memory breadth-first pass over the sample classifies patterns
   as frequent / ambiguous / infrequent with the Chernoff band and the
   restricted spread (Claims 4.1/4.2), producing the FQT and INFQT
   borders;
3. border collapsing probes halfway layers of the ambiguous region
   against the full database until no ambiguity remains
   (Algorithms 4.3/4.4).

The total number of database passes is ``1 + (Phase-3 scans)`` — the
paper's headline result is that this stays at 2-4 where level-wise
verification needs 5-10+.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Union

import numpy as np

from ..core.border import Border
from ..core.compatibility import CompatibilityMatrix
from ..core.lattice import PatternConstraints
from ..core.latticekernels import resolve_lattice
from ..core.match import symbol_matches_and_sample
from ..core.pattern import Pattern
from ..core.sequence import AnySequenceDatabase
from ..engine import EngineSpec, ResidentSampleEvaluator, get_engine
from ..errors import MiningError
from ..obs import SCANS, Tracer, ensure_tracer, io_snapshot, record_io
from .ambiguous import classify_on_sample
from .collapsing import collapse_borders
from .counting import validate_memory_capacity
from .result import MiningResult, SampleClassification


class BorderCollapsingMiner:
    """Probabilistic mining of long noisy patterns in few scans.

    Parameters
    ----------
    matrix:
        Compatibility matrix ``C(true | observed)``.
    min_match:
        Match threshold qualifying frequent patterns.
    sample_size:
        Number of sequences held in memory for Phase 2 (the paper's
        ``n``, bounded by memory capacity).
    delta:
        Chernoff failure probability; the paper uses ``1 - δ = 0.9999``
        by default.
    constraints:
        Structural bounds for candidate enumeration.
    memory_capacity:
        Maximum pattern counters per Phase-3 scan (``None`` =
        unbounded).
    use_restricted_spread:
        Apply Claim 4.2's tightened spread (on by default; Figure 11
        measures the effect of turning it off).
    engine:
        Match-execution backend (``"reference"``, ``"vectorized"``,
        ``"parallel"``, or a :class:`~repro.engine.MatchEngine`
        instance) used for every full-database and sample counting
        pass.  The backend never changes results or scan counts, only
        throughput.
    tracer:
        Optional :class:`repro.obs.Tracer` recording per-phase spans
        and counters; when given, :meth:`mine` attaches a
        :class:`repro.obs.RunReport` to the result.  A tracer records
        one run — create a fresh one per ``mine()`` call.
    resident_sample:
        Run Phase 2 with the
        :class:`~repro.engine.resident.ResidentSampleEvaluator`, which
        pins the sample once and extends candidate score planes
        incrementally instead of recomputing them per level.  Results,
        scan counts and Phase-3 behaviour are identical; only Phase-2
        wall-clock changes.  ``None`` defers to the
        ``NOISYMINE_RESIDENT`` environment variable (default off).
    """

    algorithm = "border-collapsing"

    def __init__(
        self,
        matrix: CompatibilityMatrix,
        min_match: float,
        sample_size: int,
        delta: float = 1e-4,
        constraints: Optional[PatternConstraints] = None,
        memory_capacity: Optional[int] = None,
        use_restricted_spread: bool = True,
        rng: Optional[np.random.Generator] = None,
        engine: EngineSpec = None,
        tracer: Optional[Tracer] = None,
        resident_sample: "Union[None, bool, ResidentSampleEvaluator]" = None,
        lattice: Optional[str] = None,
    ):
        if not 0.0 < min_match <= 1.0:
            raise MiningError(f"min_match must lie in (0, 1], got {min_match}")
        if sample_size < 1:
            raise MiningError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        validate_memory_capacity(memory_capacity)
        self.matrix = matrix
        self.min_match = min_match
        self.sample_size = sample_size
        self.delta = delta
        self.constraints = constraints or PatternConstraints()
        self.memory_capacity = memory_capacity
        self.use_restricted_spread = use_restricted_spread
        self.rng = rng or np.random.default_rng()
        self.engine = get_engine(engine)
        self.tracer = ensure_tracer(tracer)
        self.resident_sample = resident_sample
        self.lattice = resolve_lattice(lattice)

    def mine(self, database: AnySequenceDatabase) -> MiningResult:
        """Run all three phases and return the discovered patterns.

        Match values in the result are exact (full-database) for every
        pattern probed during border collapsing and sample estimates for
        patterns decided by the Chernoff bound alone; the ``extras``
        entry ``"verified"`` lists the exactly-measured ones.
        """
        started = time.perf_counter()
        scans_before = database.scan_count
        tracer = self.tracer
        sample_size = min(self.sample_size, len(database))
        tracer.note("lattice", self.lattice)
        tracer.note("requested_sample_size", self.sample_size)
        tracer.note("effective_sample_size", sample_size)

        # Phase 1 — one scan: per-symbol matches + in-memory sample.
        with tracer.phase("phase1-scan"):
            io_before = io_snapshot(database)
            symbol_match, sample = symbol_matches_and_sample(
                database, self.matrix, sample_size, self.rng
            )
            tracer.count(SCANS, 1)
            record_io(tracer, database, io_before)

        # Phase 2 — in-memory classification (no database passes).  When
        # the sample is the entire database the estimates are exact and
        # the Chernoff band collapses to zero.
        with tracer.phase("phase2-sample-mining"):
            classification = classify_on_sample(
                sample,
                self.matrix,
                self.min_match,
                self.delta,
                symbol_match,
                self.constraints,
                use_restricted_spread=self.use_restricted_spread,
                exact=sample_size >= len(database),
                engine=self.engine,
                tracer=tracer,
                resident=self.resident_sample,
                lattice=self.lattice,
            )

        # Phase 3 — border collapsing over the ambiguous band.
        with tracer.phase("phase3-collapse"):
            outcome = collapse_borders(
                database,
                self.matrix,
                self.min_match,
                classification,
                self.memory_capacity,
                engine=self.engine,
                tracer=tracer,
                lattice=self.lattice,
            )

        frequent = self._assemble_frequent(classification, outcome.verified,
                                           outcome.border)
        scans = database.scan_count - scans_before
        elapsed = time.perf_counter() - started
        return MiningResult(
            frequent=frequent,
            border=outcome.border,
            scans=scans,
            elapsed_seconds=elapsed,
            extras={
                "symbol_match": symbol_match,
                "classification": classification,
                "ambiguous_patterns": classification.ambiguous_count(),
                "verified": dict(outcome.verified),
                "probe_rounds": outcome.probe_rounds,
                "phase3_scans": outcome.scans,
                "sample_size": sample_size,
            },
            report=tracer.report(
                algorithm=self.algorithm,
                engine=self.engine.name,
                scans=scans,
                elapsed_seconds=elapsed,
            ),
        )

    def _assemble_frequent(
        self,
        classification: SampleClassification,
        verified: Dict[Pattern, float],
        border: Border,
    ) -> Dict[Pattern, float]:
        """Attach the best known match value to every frequent pattern.

        Every pattern in the downward closure of the final border was
        evaluated during Phase 2 (candidates only extend surviving
        patterns), so a sample estimate always exists; exact Phase-3
        values take precedence.
        """
        frequent: Dict[Pattern, float] = {}
        for pattern in border.downward_closure():
            if not self.constraints.admits(pattern):
                continue
            if pattern in verified:
                frequent[pattern] = verified[pattern]
            else:
                # Candidates only extend surviving patterns, so every
                # closure member was evaluated during Phase 2.
                frequent[pattern] = classification.sample_matches[pattern]
        return frequent


def mine_noisy_patterns(
    database: AnySequenceDatabase,
    matrix: CompatibilityMatrix,
    min_match: float,
    sample_size: Optional[int] = None,
    **kwargs,
) -> MiningResult:
    """One-call convenience API for the paper's algorithm.

    ``sample_size`` defaults to a quarter of the database (at least one
    sequence), a reasonable stand-in for "whatever fits in memory".

    >>> # doctest-style sketch; see examples/quickstart.py for a runnable
    >>> # end-to-end version.
    """
    if sample_size is None:
        sample_size = max(1, len(database) // 4)
    miner = BorderCollapsingMiner(
        matrix, min_match, sample_size=sample_size, **kwargs
    )
    return miner.mine(database)
