"""Sampling-based level-wise search (the Toivonen-style baseline).

This is the second comparison algorithm of Figure 14: like the paper's
miner it samples first, but it finalises the result with a **level-wise**
verification against the full database — one lattice level per pass
(more when the level exceeds the memory budget) — instead of border
collapsing.  When the true border lies far from the border estimated on
the sample, many passes are needed; Figure 14(c) measures exactly that
distance.

The implementation shares Phases 1-2 with the paper's algorithm so the
two differ only in the finalisation strategy, which keeps the
comparison honest.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Union

from ..core.border import Border
from ..core.compatibility import CompatibilityMatrix
from ..core.lattice import PatternConstraints, generate_candidates
from ..core.latticekernels import resolve_lattice
from ..core.match import symbol_matches_and_sample
from ..core.pattern import Pattern
from ..core.sequence import AnySequenceDatabase
from ..engine import EngineSpec, ResidentSampleEvaluator, get_engine
from ..errors import MiningError
from ..obs import (
    CANDIDATES_GENERATED,
    SCANS,
    Tracer,
    ensure_tracer,
    io_snapshot,
    record_io,
)
from .ambiguous import classify_on_sample
from .chernoff import INFREQUENT
from .counting import count_matches_batched, validate_memory_capacity
from .result import LevelStats, MiningResult

import numpy as np


class ToivonenMiner:
    """Sample, then verify level by level against the full database."""

    algorithm = "toivonen"

    def __init__(
        self,
        matrix: CompatibilityMatrix,
        min_match: float,
        sample_size: int,
        delta: float = 1e-4,
        constraints: Optional[PatternConstraints] = None,
        memory_capacity: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        engine: EngineSpec = None,
        tracer: Optional[Tracer] = None,
        resident_sample: "Union[None, bool, ResidentSampleEvaluator]" = None,
        lattice: Optional[str] = None,
    ):
        if not 0.0 < min_match <= 1.0:
            raise MiningError(f"min_match must lie in (0, 1], got {min_match}")
        validate_memory_capacity(memory_capacity)
        self.matrix = matrix
        self.min_match = min_match
        self.sample_size = sample_size
        self.delta = delta
        self.constraints = constraints or PatternConstraints()
        self.memory_capacity = memory_capacity
        self.rng = rng or np.random.default_rng()
        self.engine = get_engine(engine)
        self.tracer = ensure_tracer(tracer)
        # Phase 2 option only: level-wise verification still runs on
        # self.engine (the full database is not pinned).
        self.resident_sample = resident_sample
        self.lattice = resolve_lattice(lattice)

    def mine(self, database: AnySequenceDatabase) -> MiningResult:
        started = time.perf_counter()
        scans_before = database.scan_count
        tracer = self.tracer
        tracer.note("lattice", self.lattice)
        tracer.note("requested_sample_size", self.sample_size)
        tracer.note(
            "effective_sample_size", min(self.sample_size, len(database))
        )

        # Phase 1 (shared): symbol matches + sample in one pass.
        with tracer.phase("phase1-scan"):
            io_before = io_snapshot(database)
            symbol_match, sample = symbol_matches_and_sample(
                database, self.matrix, self.sample_size, self.rng
            )
            tracer.count(SCANS, 1)
            record_io(tracer, database, io_before)
        # Phase 2 (shared): classify candidates on the sample; every
        # pattern that is not clearly infrequent must be verified.
        with tracer.phase("phase2-sample-mining"):
            classification = classify_on_sample(
                sample,
                self.matrix,
                self.min_match,
                self.delta,
                symbol_match,
                self.constraints,
                engine=self.engine,
                tracer=tracer,
                resident=self.resident_sample,
                lattice=self.lattice,
            )
        to_verify: Dict[int, List[Pattern]] = {}
        for pattern, label in classification.labels.items():
            if label != INFREQUENT and pattern.weight >= 2:
                to_verify.setdefault(pattern.weight, []).append(pattern)

        frequent_symbols = [
            d
            for d in range(self.matrix.size)
            if symbol_match[d] >= self.min_match
        ]
        frequent: Dict[Pattern, float] = {
            Pattern.single(d): float(symbol_match[d])
            for d in frequent_symbols
        }
        level_stats = [
            LevelStats(1, self.matrix.size, len(frequent_symbols))
        ]

        # Level-wise finalisation: verify the sampled candidates level by
        # level, then keep extending past the sampled border if the real
        # border turns out to lie beyond it.
        current: Set[Pattern] = set(frequent)
        level = 1
        while current and level < self.constraints.max_weight:
            level += 1
            candidates = set(to_verify.get(level, []))
            # Apriori extension from the verified previous level, in case
            # the sample under-estimated the border.
            candidates |= generate_candidates(
                current, frequent_symbols, self.constraints,
                lattice=self.lattice, tracer=tracer,
            )
            candidates = {
                c
                for c in candidates
                if all(
                    sub in frequent
                    for sub in c.immediate_subpatterns()
                    if self.constraints.admits(sub)
                )
            }
            if not candidates:
                break
            with tracer.phase(f"verify-level-{level}"):
                tracer.count(CANDIDATES_GENERATED, len(candidates))
                matches = count_matches_batched(
                    sorted(candidates),
                    database,
                    self.matrix,
                    self.memory_capacity,
                    engine=self.engine,
                    tracer=tracer,
                )
                survivors = {
                    p: v for p, v in matches.items() if v >= self.min_match
                }
            frequent.update(survivors)
            level_stats.append(
                LevelStats(level, len(candidates), len(survivors))
            )
            current = set(survivors)

        border = Border(frequent, lattice=self.lattice, tracer=tracer)
        estimated_border = classification.fqt
        scans = database.scan_count - scans_before
        elapsed = time.perf_counter() - started
        return MiningResult(
            frequent=frequent,
            border=border,
            scans=scans,
            elapsed_seconds=elapsed,
            level_stats=level_stats,
            extras={
                "symbol_match": symbol_match,
                "estimated_border": estimated_border,
                "border_distance": border.level_distance(estimated_border),
                "ambiguous_patterns": classification.ambiguous_count(),
            },
            report=tracer.report(
                algorithm=self.algorithm,
                engine=self.engine.name,
                scans=scans,
                elapsed_seconds=elapsed,
            ),
        )
