"""Command-line interface.

Seven subcommands cover the full workflow on text sequence files
(the ``<id> TAB <space-separated symbol indices>`` format of
:meth:`repro.core.sequence.SequenceDatabase.save`):

* ``noisymine generate`` — synthesise a standard database with planted
  motifs and optionally a noisy test database next to it;
* ``noisymine mine`` — run one of the six miners over a sequence file
  and print the frequent patterns; ``--checkpoint`` additionally
  writes a delta-remining checkpoint for segmented stores;
* ``noisymine remine`` — refresh a checkpointed result over a grown
  segmented store in O(Δ) instead of re-running from scratch;
* ``noisymine convert`` — translate between the text format, the
  packed binary store (``.nmp``, memory-maps on open and scans an
  order of magnitude faster) and the appendable segmented store
  directory;
* ``noisymine evaluate`` — compare two mining runs (e.g. match model on
  noisy data vs support model on clean data) by accuracy/completeness;
* ``noisymine serve`` — run the long-lived mining daemon (HTTP job
  queue with warm store/engine/sample state across jobs);
* ``noisymine submit`` — submit one mining job to a running daemon and
  wait for the result.

``noisymine mine`` accepts either representation: ``--store auto`` (the
default) sniffs the packed magic bytes, so a converted store is a
drop-in replacement for the text file it came from.

Flag/environment resolution lives in :class:`repro.config.MiningConfig`
— ``mine`` and ``submit`` share the exact same precedence (flag >
``NOISYMINE_*`` env > default) and the exact same result payload shape
(:func:`repro.config.json_payload`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

import numpy as np

from .config import MiningConfig, json_payload, open_database
from .core.latticekernels import LATTICE_MODES
from .core.pattern import Pattern
from .core.sequence import FileSequenceDatabase
from .datagen.motifs import Motif, random_motif
from .engine import RESIDENT_KERNEL_MODES, SCORE_DTYPES, available_engines
from .datagen.noise import corrupt_uniform
from .datagen.synthetic import generate_database
from .errors import NoisyMineError
from .eval.metrics import quality
from .io import (
    PackedSequenceStore,
    SegmentedSequenceStore,
    is_packed_store,
    is_segmented_store,
)
from .obs import Tracer


def _add_mining_options(parser: argparse.ArgumentParser) -> None:
    """Mining-run flags shared by ``mine`` and ``submit``.

    One flag set, one resolution rule: the parsed values feed
    :meth:`repro.config.MiningConfig.resolve`, so both subcommands
    honour the same ``NOISYMINE_*`` environment fallbacks.
    """
    parser.add_argument("--alphabet", type=int, default=None,
                        help="number of distinct symbols m "
                             "(required for text format)")
    parser.add_argument("--min-match", type=float, required=True)
    parser.add_argument(
        "--algorithm",
        choices=[
            "border-collapsing", "levelwise", "maxminer", "toivonen",
            "pincer", "depthfirst",
        ],
        default="border-collapsing",
    )
    parser.add_argument(
        "--noise", type=float, default=0.0,
        help="uniform noise level used to build the compatibility matrix "
             "(0 = identity matrix = classical support)",
    )
    parser.add_argument("--sample-size", type=int, default=None)
    parser.add_argument("--delta", type=float, default=1e-4)
    parser.add_argument("--max-weight", type=int, default=8)
    parser.add_argument("--max-span", type=int, default=10)
    parser.add_argument("--max-gap", type=int, default=0)
    parser.add_argument("--memory-capacity", type=int, default=None)
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="match-execution backend: 'reference' (per-sequence loops), "
             "'vectorized' (batched numpy kernels + factor cache), "
             "'parallel' (multiprocessing shards), or 'native' (numba "
             "JIT-compiled fused kernels; needs the noisymine[native] "
             "extra, fails loudly without it unless "
             "$NOISYMINE_NATIVE_FALLBACK=1); results and scan counts "
             "are identical across backends "
             "(default: $NOISYMINE_ENGINE, else 'reference')",
    )
    parser.add_argument(
        "--score-dtype",
        choices=list(SCORE_DTYPES),
        default=None,
        help="scoring precision: 'float64' (default, bit-identical to "
             "every backend) or 'float32' (halved scoring-pass memory "
             "traffic, match values within the documented error bound; "
             "requires --engine native or --resident-sample) "
             "(default: $NOISYMINE_SCORE_DTYPE, else 'float64')",
    )
    parser.add_argument(
        "--lattice",
        choices=list(LATTICE_MODES),
        default=None,
        help="lattice execution mode: 'kernel' (packed numpy batch "
             "kernels for candidate generation, signature-indexed "
             "border/subsumption checks) or 'reference' (the original "
             "pure-Python lattice paths); borders, labels and scan "
             "counts are identical in both modes "
             "(default: $NOISYMINE_LATTICE, else 'kernel')",
    )
    parser.add_argument(
        "--resident-sample",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="run Phase 2 (sample classification) with the resident "
             "evaluator, which pins the sample once and extends candidate "
             "score planes incrementally; results and scan counts are "
             "identical, only Phase-2 wall-clock changes; applies to the "
             "sampling algorithms (border-collapsing, toivonen) "
             "(default: $NOISYMINE_RESIDENT, else off)",
    )
    parser.add_argument(
        "--resident-kernels",
        choices=list(RESIDENT_KERNEL_MODES),
        default=None,
        help="kernel dispatch of the resident Phase-2 evaluator: 'auto' "
             "(compiled incremental-plane kernels when numba is "
             "available, numpy otherwise), 'numpy' (force the numpy "
             "plane path), or 'pure' (interpreted kernel twins, for "
             "differential testing); all dispatches are bit-identical "
             "at equal --score-dtype "
             "(default: $NOISYMINE_RESIDENT_KERNELS, else 'auto')",
    )
    parser.add_argument("--seed", type=int, default=None)


def _config_from_args(args: argparse.Namespace) -> MiningConfig:
    """Resolve the shared mining flags (flag > NOISYMINE_* env >
    default) into a canonical :class:`MiningConfig`."""
    return MiningConfig.resolve(
        min_match=args.min_match,
        algorithm=args.algorithm,
        alphabet=args.alphabet,
        noise=args.noise,
        sample_size=args.sample_size,
        delta=args.delta,
        max_weight=args.max_weight,
        max_span=args.max_span,
        max_gap=args.max_gap,
        memory_capacity=args.memory_capacity,
        seed=args.seed,
        engine=args.engine,
        lattice=args.lattice,
        resident_sample=args.resident_sample,
        resident_kernels=args.resident_kernels,
        store=getattr(args, "store", None),
        score_dtype=args.score_dtype,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="noisymine",
        description=(
            "Mining long sequential patterns in a noisy environment "
            "(Yang, Wang, Yu, Han; SIGMOD 2002)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="synthesise a sequence database with planted motifs"
    )
    gen.add_argument("output", help="path for the standard database")
    gen.add_argument("--sequences", type=int, default=1000)
    gen.add_argument("--length", type=int, default=50)
    gen.add_argument("--alphabet", type=int, default=20)
    gen.add_argument(
        "--motif-weight", type=int, default=6,
        help="number of symbols in each planted motif",
    )
    gen.add_argument("--motifs", type=int, default=2, dest="n_motifs")
    gen.add_argument(
        "--motif-frequency", type=float, default=0.3,
        help="fraction of sequences carrying each motif",
    )
    gen.add_argument(
        "--noise", type=float, default=0.0,
        help="also write a noisy test database (uniform alpha)",
    )
    gen.add_argument(
        "--noisy-output", default=None,
        help="path for the noisy copy (default: <output>.noisy)",
    )
    gen.add_argument("--seed", type=int, default=None)

    mine = sub.add_parser("mine", help="mine frequent patterns from a file")
    mine.add_argument("input", help="sequence file to mine")
    mine.add_argument(
        "--format", choices=["text", "fasta"], default="text",
        help="input format: the library's text format, or FASTA "
             "(20-letter amino-acid alphabet, implies --alphabet 20)",
    )
    mine.add_argument(
        "--store",
        choices=["auto", "text", "packed", "segmented"],
        default=None,
        help="on-disk representation of the input: 'text' streams and "
             "re-parses the text format every scan, 'packed' memory-maps "
             "a packed binary store (written by 'noisymine convert'), "
             "'segmented' opens an appendable segmented store directory, "
             "'auto' sniffs (segment manifest, then packed magic bytes); "
             "results are identical either way "
             "(default: $NOISYMINE_STORE, else 'auto')",
    )
    _add_mining_options(mine)
    mine.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the parallel engine's scatter-gather "
             "counting tier; only meaningful with --engine parallel "
             "(default: $NOISYMINE_WORKERS, else the CPU affinity mask)",
    )
    mine.add_argument(
        "--oversplit", type=int, default=None, metavar="K",
        help="work-stealing depth for the parallel engine: the store is "
             "cut into ~K shard tasks per worker so idle workers steal "
             "from the shared queue; merged totals are bit-identical for "
             "any K (default: $NOISYMINE_OVERSPLIT, else 3)",
    )
    mine.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a table "
             "(includes a 'metrics' block with per-phase scans/timings)",
    )
    mine.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="also write the run's structured RunReport (per-phase spans, "
             "scan/cache/shard counters) to PATH as JSON",
    )
    mine.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="also write a delta-remining checkpoint (per-symbol match "
             "sums + exact border sums) to PATH; requires a segmented "
             "store input, and 'noisymine remine' refreshes it in O(Δ) "
             "after appends",
    )

    remine = sub.add_parser(
        "remine",
        help="refresh a checkpointed mining result over a grown "
             "segmented store (O(Δ) delta remining instead of a "
             "from-scratch run)",
    )
    remine.add_argument(
        "input", help="segmented store directory the checkpoint was "
                      "taken on (after zero or more appends)",
    )
    remine.add_argument(
        "--checkpoint", required=True, metavar="PATH",
        help="checkpoint written by 'noisymine mine --checkpoint'; "
             "refreshed in place after the remine (see --checkpoint-out)",
    )
    remine.add_argument(
        "--checkpoint-out", default=None, metavar="PATH",
        help="write the refreshed checkpoint here instead of "
             "overwriting --checkpoint",
    )
    _add_mining_options(remine)
    remine.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a table",
    )
    remine.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="also write the refresh's structured RunReport to PATH "
             "as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help="run the mining service daemon (HTTP job queue with warm "
             "store/engine/sample state across jobs)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port to listen on (0 picks a free port)")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker threads draining the job queue; jobs on different "
             "stores run concurrently (default: 2)",
    )
    serve.add_argument(
        "--store-capacity", type=int, default=4,
        help="packed stores kept memory-mapped at once (LRU, default: 4)",
    )
    serve.add_argument(
        "--memo-entries", type=int, default=128,
        help="memoized job results kept (LRU, default: 128)",
    )
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")

    submit = sub.add_parser(
        "submit",
        help="submit one mining job to a running daemon and print the "
             "result",
    )
    submit.add_argument(
        "input",
        help="packed-store path or segmented-store directory, resolved "
             "on the daemon's filesystem",
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="base URL of the daemon (default: http://127.0.0.1:8765)",
    )
    _add_mining_options(submit)
    submit.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait for the job to finish (default: 300)",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="emit the full result document as JSON instead of a table",
    )

    conv = sub.add_parser(
        "convert",
        help="translate a sequence database between the text format and "
             "the packed binary store",
    )
    conv.add_argument("input", help="sequence file to convert "
                                    "(text or packed, sniffed)")
    conv.add_argument("output", help="path for the converted database")
    conv.add_argument(
        "--to",
        choices=["packed", "text", "segmented"],
        default="packed",
        dest="target",
        help="output representation: 'packed' single-file store, "
             "'segmented' appendable store directory, or 'text' "
             "(default: packed)",
    )

    ev = sub.add_parser(
        "evaluate",
        help="accuracy/completeness of one pattern list vs a reference",
    )
    ev.add_argument("found", help="JSON file produced by 'mine --json'")
    ev.add_argument("reference", help="JSON file produced by 'mine --json'")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "mine":
            return _cmd_mine(args)
        if args.command == "remine":
            return _cmd_remine(args)
        if args.command == "convert":
            return _cmd_convert(args)
        if args.command == "evaluate":
            return _cmd_evaluate(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
    except (NoisyMineError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: invalid JSON input: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable: argparse enforces the command set")


def _cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    motifs: List[Motif] = [
        random_motif(args.motif_weight, args.alphabet, args.motif_frequency,
                     rng)
        for _ in range(args.n_motifs)
    ]
    database = generate_database(
        args.sequences, args.length, args.alphabet, motifs, rng=rng
    )
    database.save(args.output)
    print(f"wrote {len(database)} sequences to {args.output}")
    for motif in motifs:
        print(f"  planted motif: {motif.pattern.to_string()} "
              f"(frequency {motif.frequency})")
    if args.noise > 0:
        noisy_path = args.noisy_output or f"{args.output}.noisy"
        noisy = corrupt_uniform(database, args.alphabet, args.noise, rng)
        noisy.save(noisy_path)
        print(f"wrote noisy copy (alpha={args.noise}) to {noisy_path}")
    return 0


def _parallel_engine_override(config, args):
    """A :class:`~repro.engine.ParallelEngine` instance honouring
    ``--workers`` / ``--oversplit``, or ``None`` when the registry
    default serves.

    The flags are execution knobs of the parallel backend only —
    naming them with any other engine is a loud error, not a silent
    no-op.
    """
    workers = getattr(args, "workers", None)
    oversplit = getattr(args, "oversplit", None)
    if config.engine != "parallel":
        if workers is not None or oversplit is not None:
            raise NoisyMineError(
                "--workers/--oversplit configure the parallel engine; "
                f"pass --engine parallel (got {config.engine!r})"
            )
        return None
    if workers is None and oversplit is None:
        return None
    from .engine import ParallelEngine

    return ParallelEngine(n_workers=workers, oversplit=oversplit)


def _cmd_mine(args: argparse.Namespace) -> int:
    # All flag/env resolution happens here, in one shot: a bad
    # NOISYMINE_* value fails loudly before any file is opened.
    config = _config_from_args(args)
    if args.format == "fasta":
        if config.store == "packed" or (config.store == "auto"
                                        and is_packed_store(args.input)):
            raise NoisyMineError(
                "--format fasta cannot be combined with a packed store; "
                "convert the FASTA file to text first, then to packed"
            )
        from .datagen.fasta import read_fasta

        database, _headers = read_fasta(args.input)
        config = config.with_overrides(alphabet=20)
    else:
        if config.alphabet is None:
            raise NoisyMineError(
                "--alphabet is required for the text input format"
            )
        database = open_database(args.input, config.store)
    # A live tracer costs a few dict updates per scan; only pay for it
    # when some output will actually carry the metrics.
    tracer = Tracer() if (args.json or args.metrics_json) else None
    engine_override = _parallel_engine_override(config, args)
    miner = config.build_miner(
        len(database), engine=engine_override, tracer=tracer
    )
    try:
        result = miner.mine(database)
    finally:
        if engine_override is not None:
            engine_override.close()
    if args.checkpoint:
        from .io import SegmentedSequenceStore
        from .mining.delta import create_checkpoint

        if not isinstance(database, SegmentedSequenceStore):
            raise NoisyMineError(
                "--checkpoint requires a segmented store input "
                "(see 'noisymine convert --to segmented'): checkpoints "
                "track segment lineage so 'remine' can refresh them "
                "after appends"
            )
        checkpoint = create_checkpoint(
            result, database, config.build_matrix(), config.min_match,
            config_key=config.to_key(),
            memory_capacity=config.memory_capacity,
            engine=config.engine,
        )
        checkpoint.save(args.checkpoint)
    if args.metrics_json:
        if result.report is None:  # pragma: no cover - defensive
            raise NoisyMineError(
                "the miner produced no metrics report; cannot honour "
                "--metrics-json"
            )
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(result.report.to_dict(), handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(json_payload(config, result), indent=2))
    else:
        print(result.summary())
        for pattern in sorted(result.frequent):
            print(f"  {pattern.to_string():30s} "
                  f"match={result.frequent[pattern]:.4f}")
        if args.checkpoint:
            print(f"checkpoint written to {args.checkpoint}")
        if args.metrics_json:
            print(f"metrics written to {args.metrics_json}")
    return 0


def _cmd_remine(args: argparse.Namespace) -> int:
    from .io import SegmentedSequenceStore
    from .mining.delta import MiningCheckpoint, delta_remine

    config = _config_from_args(args)
    checkpoint = MiningCheckpoint.load(args.checkpoint)
    tracer = Tracer() if (args.json or args.metrics_json) else None
    with SegmentedSequenceStore.open(args.input) as store:
        outcome = delta_remine(
            store,
            config.build_matrix(),
            checkpoint,
            constraints=config.constraints(),
            memory_capacity=config.memory_capacity,
            engine=config.engine,
            tracer=tracer,
            lattice=config.lattice,
            config_key=config.to_key(),
        )
    out_path = args.checkpoint_out or args.checkpoint
    outcome.checkpoint.save(out_path)
    result = outcome.result
    if args.metrics_json:
        if result.report is None:  # pragma: no cover - defensive
            raise NoisyMineError(
                "the refresh produced no metrics report; cannot honour "
                "--metrics-json"
            )
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(result.report.to_dict(), handle, indent=2)
            handle.write("\n")
    if args.json:
        payload = json_payload(config, result)
        payload["delta"] = {
            "delta_sequences": outcome.delta_sequences,
            "full_scans": outcome.full_scans,
            "reprobed": outcome.reprobed,
            "crosser_candidates": outcome.crosser_candidates,
            "checkpoint": out_path,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(result.summary())
        print(
            f"  refreshed over {outcome.delta_sequences} appended "
            f"sequences ({outcome.full_scans} full-store scans, "
            f"{outcome.reprobed} border re-probes, "
            f"{outcome.crosser_candidates} crosser candidates)"
        )
        for element in sorted(result.border.elements):
            print(f"  {element.to_string():30s} "
                  f"match={result.frequent[element]:.4f}")
        print(f"checkpoint written to {out_path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import MiningServer, MiningService

    service = MiningService(
        workers=args.workers,
        store_capacity=args.store_capacity,
        memo_entries=args.memo_entries,
    )
    with MiningServer(
        host=args.host, port=args.port, service=service,
        verbose=not args.quiet,
    ) as server:
        host, port = server.address
        print(f"noisymine daemon listening on http://{host}:{port}",
              flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    config = _config_from_args(args)
    client = ServiceClient(args.url)
    job = client.submit(config.to_dict(), store=os.path.abspath(args.input))
    doc = client.wait(job["id"], timeout=args.timeout)
    if args.json:
        print(json.dumps(doc, indent=2))
        return 0
    payload = doc["result"]
    patterns = payload["patterns"]
    memo = " (memoized)" if doc.get("memo_hit") else ""
    print(
        f"job {doc['id']}: {len(patterns)} frequent patterns "
        f"({payload['algorithm']}, min_match={payload['min_match']}){memo}"
    )
    for text in sorted(patterns):
        print(f"  {text:30s} match={patterns[text]:.4f}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    if is_segmented_store(args.input):
        source = SegmentedSequenceStore.open(args.input)
    elif is_packed_store(args.input):
        source = PackedSequenceStore.open(args.input)
    else:
        source = FileSequenceDatabase(args.input)
    n = len(source)
    if args.target == "text":
        if isinstance(source, PackedSequenceStore):
            source.save_text(args.output)
        else:
            # Round-trip through the packed builder, which normalises
            # whitespace and validates every row.
            PackedSequenceStore.from_database(source).save_text(args.output)
        print(f"wrote {n} sequences to {args.output} (text)")
        return 0
    if args.target == "segmented":
        store = SegmentedSequenceStore.create(args.output, source)
        print(
            f"wrote {len(store)} sequences ({store.total_symbols()} "
            f"symbols) to {args.output} (segmented, 1 segment, "
            f"digest {store.digest[:12]})"
        )
        store.close()
        return 0
    if isinstance(source, PackedSequenceStore):
        # packed -> packed is a verified re-save (detects bit rot).
        source.verify()
    store = PackedSequenceStore.from_database(source, args.output)
    print(
        f"wrote {len(store)} sequences ({store.total_symbols()} symbols) "
        f"to {args.output} (packed, digest {store.digest[:12]})"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    found = _load_patterns(args.found)
    reference = _load_patterns(args.reference)
    report = quality(found, reference)
    print(report)
    return 0


def _load_patterns(path: str) -> List[Pattern]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    patterns = []
    for text in payload["patterns"]:
        elements = [-1 if tok == "*" else int(tok) for tok in text.split()]
        patterns.append(Pattern(elements))
    return patterns


if __name__ == "__main__":
    raise SystemExit(main())
