"""Segmented sequence store: an append-only log of packed segments.

:class:`~repro.io.packed.PackedSequenceStore` is immutable by design —
its header digest *is* its identity, which is what the daemon's warm
caches key on.  Real traffic appends sequences, and rewriting a
multi-gigabyte store to add 1% of rows wastes both the write and every
warm cache keyed on the old digest.  :class:`SegmentedSequenceStore`
keeps the immutability and adds growth:

* the store is a **directory** holding immutable, digest-named packed
  segment files (``seg-<digest16>.nmp``) plus one JSON ``MANIFEST``
  listing the segments in append order;
* the **manifest digest** — blake2b-16 over the ordered segment
  digests — names the logical content, exactly like a packed store's
  header digest names its payload.  Any append changes it, so
  digest-keyed caches (store cache, result memo, mining checkpoints)
  are delta-aware for free;
* :meth:`append` packs the new rows into one fresh segment, writes it
  under its digest name, and swaps the manifest atomically
  (``os.replace``), so readers see either the old store or the new
  store, never a torn one.  Re-appending after a crash that wrote the
  segment but not the manifest simply overwrites the identical
  segment file — append is idempotent at the byte level;
* the scan contract is the same as every other backend —
  ``scan`` / ``scan_chunks`` count passes, ``sample(seed=...)`` draws
  the identical random stream in the identical global scan order — so
  all six miners run on a segmented store unchanged, and mining output
  is bit-identical to the equivalent flat store.

The delta-remining machinery (:mod:`repro.mining.delta`) builds on the
segment boundaries: a checkpoint records the manifest prefix it has
proofs for, and :meth:`segments_after` exposes exactly the appended
suffix for O(Δ) refresh scans.
"""

from __future__ import annotations

import hashlib
import json
import os
from time import perf_counter
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.sequence import (
    DEFAULT_SCAN_CHUNK_ROWS,
    SequenceChunk,
    SequenceDatabase,
    _check_chunk_rows,
    _sampling_rng,
)
from ..errors import SamplingError, SequenceDatabaseError
from .packed import PackedSequenceStore, peek_store_digest

#: Manifest file name inside a segmented store directory.
MANIFEST_NAME = "MANIFEST.json"

#: Manifest format marker and version.
MANIFEST_FORMAT = "noisymine-segments"
MANIFEST_VERSION = 1

#: Domain separator so a manifest digest can never collide with a raw
#: packed-store payload digest over the same bytes.
_MANIFEST_DOMAIN = b"noisymine-segment-manifest-v1"


def manifest_digest(segment_digests: Sequence[str]) -> str:
    """Hex blake2b-16 over the *ordered* segment digests.

    This is the segmented store's content identity: two stores with the
    same segments in the same order share it, and any append, reorder
    or truncation changes it.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(_MANIFEST_DOMAIN)
    for hex_digest in segment_digests:
        digest.update(bytes.fromhex(hex_digest))
    return digest.hexdigest()


def is_segmented_store(path: Union[str, os.PathLike]) -> bool:
    """True if *path* is a directory holding a segment manifest."""
    return os.path.isfile(os.path.join(os.fspath(path), MANIFEST_NAME))


def segment_file_name(digest_hex: str) -> str:
    """Canonical file name of the segment with the given content digest."""
    return f"seg-{digest_hex[:16]}.nmp"


def _read_manifest(root: str) -> dict:
    manifest_path = os.path.join(root, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise SequenceDatabaseError(
            f"cannot read segment manifest {manifest_path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise SequenceDatabaseError(
            f"{manifest_path}: corrupt segment manifest (bad JSON: {exc})"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != \
            MANIFEST_FORMAT:
        raise SequenceDatabaseError(
            f"{manifest_path}: not a segmented sequence store manifest"
        )
    if payload.get("version") != MANIFEST_VERSION:
        raise SequenceDatabaseError(
            f"{manifest_path}: unsupported manifest version "
            f"{payload.get('version')!r} (this build reads version "
            f"{MANIFEST_VERSION})"
        )
    segments = payload.get("segments")
    if not isinstance(segments, list) or not segments:
        raise SequenceDatabaseError(
            f"{manifest_path}: manifest lists no segments"
        )
    recorded = payload.get("manifest_digest")
    if recorded is not None:
        try:
            computed = manifest_digest(
                [entry["digest"] for entry in segments]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SequenceDatabaseError(
                f"{manifest_path}: malformed segment entry ({exc})"
            ) from exc
        if recorded != computed:
            raise SequenceDatabaseError(
                f"{manifest_path}: manifest digest mismatch (recorded "
                f"{recorded}, segments hash to {computed}) — the "
                "manifest was tampered with or partially written"
            )
    return payload


def peek_manifest_digest(path: Union[str, os.PathLike]) -> str:
    """The manifest digest of a segmented store, from the manifest
    alone — no segment is opened.  The segmented analogue of
    :func:`repro.io.packed.peek_store_digest`."""
    root = os.fspath(path)
    payload = _read_manifest(root)
    digests = [entry["digest"] for entry in payload["segments"]]
    return manifest_digest(digests)


class SegmentedSequenceStore:
    """A growing sequence database over immutable packed segments.

    Construct via :meth:`create` (seed a new directory from any
    scan-contract backend) or :meth:`open` (map an existing one).  The
    store satisfies the same scan/sample/metadata contract as the flat
    backends; rows are zero-copy views into the segments' mapped
    buffers.  :meth:`append` is the only mutation, and it never touches
    existing segment bytes.
    """

    def __init__(self, root: str, segments: List[PackedSequenceStore]):
        if not segments:
            raise SequenceDatabaseError(
                "a segmented store must contain at least one segment"
            )
        self._root = root
        self._segments = segments
        self._digest = manifest_digest([s.digest for s in segments])
        self._scan_count = 0
        self._closed = False
        self._id_to_segment = None
        self.io_bytes_read = 0
        self.io_chunks = 0
        self.io_chunk_seconds = 0.0
        self._check_unique_ids()

    def _check_unique_ids(self) -> None:
        seen = set()
        for segment in self._segments:
            for sid in segment.ids:
                if sid in seen:
                    raise SequenceDatabaseError(
                        f"{self._root}: duplicate sequence id {sid} "
                        "across segments"
                    )
                seen.add(sid)

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: Union[str, os.PathLike],
        database=None,
    ) -> "SegmentedSequenceStore":
        """Create a new segmented store directory at *path*.

        With *database* (any scan-contract backend) the rows become the
        first segment; without, the directory is prepared but the store
        cannot be opened until a first :meth:`append` -- so in practice
        always seed it.  Fails if *path* already holds a manifest.
        """
        root = os.fspath(path)
        if is_segmented_store(root):
            raise SequenceDatabaseError(
                f"{root} already holds a segmented store"
            )
        os.makedirs(root, exist_ok=True)
        if database is None:
            raise SequenceDatabaseError(
                "create() needs an initial database: an empty segmented "
                "store cannot satisfy the scan contract"
            )
        packed = PackedSequenceStore.from_database(database)
        _write_segment(root, packed)
        _swap_manifest(root, [packed])
        return cls.open(root)

    @classmethod
    def open(
        cls, path: Union[str, os.PathLike]
    ) -> "SegmentedSequenceStore":
        """Open a segmented store directory: read the manifest, map
        every segment, and validate each segment's header digest
        against its manifest entry.

        Raises :class:`SequenceDatabaseError` on a missing/corrupt
        manifest, a missing segment file, or a digest mismatch (a
        segment file whose bytes are not the ones the manifest
        promises).
        """
        root = os.fspath(path)
        payload = _read_manifest(root)
        segments: List[PackedSequenceStore] = []
        try:
            for entry in payload["segments"]:
                digest = entry["digest"]
                file_name = entry.get("file", segment_file_name(digest))
                segment_path = os.path.join(root, file_name)
                actual = peek_store_digest(segment_path)
                if actual != digest:
                    raise SequenceDatabaseError(
                        f"{segment_path}: segment digest mismatch "
                        f"(manifest {digest}, header {actual})"
                    )
                segments.append(PackedSequenceStore.open(segment_path))
        except (KeyError, TypeError) as exc:
            raise SequenceDatabaseError(
                f"{os.path.join(root, MANIFEST_NAME)}: malformed segment "
                f"entry ({exc})"
            ) from exc
        return cls(root, segments)

    # -- append ---------------------------------------------------------------

    def append(
        self,
        sequences,
        ids: Optional[Sequence[int]] = None,
    ) -> str:
        """Append rows as one new immutable segment; returns its digest.

        *sequences* is an iterable of integer rows (or any scan-contract
        database when *ids* is ``None``).  Ids must not collide with any
        existing sequence id; omitted ids continue from the current
        maximum.  The new segment file is written first, then the
        manifest is swapped atomically — a reader holding the old
        manifest keeps a consistent (shorter) store, and a crash
        between the two writes leaves the store exactly as it was.
        """
        self._require_open()
        if hasattr(sequences, "scan") and ids is None:
            database = sequences
        else:
            rows = [np.asarray(row, dtype=np.int32) for row in sequences]
            if not rows:
                raise SequenceDatabaseError(
                    "cannot append an empty batch of sequences"
                )
            if ids is None:
                next_id = max(
                    (max(s.ids) for s in self._segments), default=-1
                ) + 1
                ids = range(next_id, next_id + len(rows))
            database = SequenceDatabase(rows, ids=list(ids))
        packed = PackedSequenceStore.from_database(database)
        existing = {
            sid for segment in self._segments for sid in segment.ids
        }
        collisions = [sid for sid in packed.ids if sid in existing]
        if collisions:
            raise SequenceDatabaseError(
                f"appended ids collide with existing sequences: "
                f"{collisions[:5]}"
            )
        segment_path = _write_segment(self._root, packed)
        segment = PackedSequenceStore.open(segment_path)
        _swap_manifest(self._root, self._segments + [segment])
        self._segments.append(segment)
        self._digest = manifest_digest([s.digest for s in self._segments])
        self._id_to_segment = None
        return segment.digest

    # -- integrity ------------------------------------------------------------

    @property
    def digest(self) -> str:
        """Hex manifest digest: blake2b-16 over ordered segment digests."""
        return self._digest

    @property
    def segment_digests(self) -> Tuple[str, ...]:
        """Segment content digests in append order."""
        return tuple(s.digest for s in self._segments)

    @property
    def segments(self) -> Tuple[PackedSequenceStore, ...]:
        """The mapped segments, in append order (read-only view)."""
        return tuple(self._segments)

    def segments_after(
        self, known_digests: Sequence[str]
    ) -> Tuple[PackedSequenceStore, ...]:
        """The appended suffix beyond a known manifest prefix.

        *known_digests* must be an exact prefix of this store's segment
        digests (the delta-remining precondition: a checkpoint's proofs
        only transfer when its store is a prefix of the current one).
        Raises :class:`SequenceDatabaseError` otherwise.
        """
        self._require_open()
        known = tuple(known_digests)
        if self.segment_digests[: len(known)] != known:
            raise SequenceDatabaseError(
                "known segments are not a prefix of this store: the "
                "checkpoint belongs to a different lineage"
            )
        return tuple(self._segments[len(known):])

    def verify(self) -> None:
        """Recompute every segment's content digest; raise on mismatch."""
        self._require_open()
        for segment in self._segments:
            segment.verify()

    # -- lifecycle ------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._root

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release every segment mapping.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._total_symbols = sum(
            s.total_symbols() for s in self._segments
        )
        for segment in self._segments:
            segment.close()
        self._id_to_segment = None

    def __enter__(self) -> "SegmentedSequenceStore":
        self._require_open()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise SequenceDatabaseError(
                f"segmented store {self._root} is closed"
            )

    # -- scan accounting ------------------------------------------------------

    @property
    def scan_count(self) -> int:
        return self._scan_count

    def reset_scan_count(self) -> None:
        self._scan_count = 0

    def scan(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(sequence_id, row_view)`` across all segments in
        append order; counts as one pass of the whole store."""
        self._require_open()
        self._scan_count += 1
        for segment in self._segments:
            rows = segment.rows_slice(0, len(segment))
            for sid, row in zip(segment.ids, rows):
                self.io_bytes_read += row.nbytes
                yield sid, row

    def scan_chunks(
        self, chunk_rows: int = DEFAULT_SCAN_CHUNK_ROWS
    ) -> Iterator[SequenceChunk]:
        """Yield zero-copy :class:`SequenceChunk` blocks; one pass.

        Chunk boundaries reset at segment boundaries (a chunk never
        spans two mapped buffers); the concatenated row stream equals
        :meth:`scan` exactly, which is all any consumer relies on.
        """
        _check_chunk_rows(chunk_rows)
        self._require_open()
        self._scan_count += 1
        started = perf_counter()
        for segment in self._segments:
            for _start, _stop, chunk in segment._slice_chunks(
                0, len(segment), chunk_rows
            ):
                self.io_chunks += 1
                self.io_bytes_read += chunk.nbytes
                self.io_chunk_seconds += perf_counter() - started
                yield chunk
                started = perf_counter()

    def begin_external_pass(self) -> None:
        """Account one logical pass executed by an external counting tier.

        The segmented analogue of
        :meth:`repro.io.packed.PackedSequenceStore.begin_external_pass`:
        workers map the segment files themselves, so this charges the
        one scan and the full symbol payload on the parent-side store.
        """
        self._require_open()
        self._scan_count += 1
        self.io_bytes_read += 4 * self.total_symbols()

    def shard_layout(
        self,
    ) -> Optional[List[Tuple[str, str, int, np.ndarray]]]:
        """Shardable description of this store for a counting tier.

        One ``(path, digest, n_rows, offsets)`` part per immutable
        segment, in append order — workers memory-map each segment file
        independently, so a segmented store no longer has to ship
        pickled rows to the pool.  Pure metadata: consumes no scan (see
        :meth:`begin_external_pass`).
        """
        self._require_open()
        parts: List[Tuple[str, str, int, np.ndarray]] = []
        for segment in self._segments:
            layout = segment.shard_layout()
            if layout is None:  # pragma: no cover - segments are file-backed
                return None
            parts.extend(layout)
        return parts

    # -- metadata -------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self._segments)

    @property
    def ids(self) -> Tuple[int, ...]:
        return tuple(
            sid for segment in self._segments for sid in segment.ids
        )

    def sequence(self, sequence_id: int) -> np.ndarray:
        """Fetch one row view by id (not counted as a scan)."""
        self._require_open()
        if self._id_to_segment is None:
            self._id_to_segment = {
                sid: segment
                for segment in self._segments
                for sid in segment.ids
            }
        segment = self._id_to_segment.get(int(sequence_id))
        if segment is None:
            raise SequenceDatabaseError(
                f"no sequence with id {sequence_id}"
            )
        return segment.sequence(sequence_id)

    def total_symbols(self) -> int:
        if self._closed:
            return self._total_symbols
        return sum(s.total_symbols() for s in self._segments)

    def average_length(self) -> float:
        """The paper's ``l̄_S``: mean sequence length."""
        return self.total_symbols() / len(self)

    def max_symbol(self) -> int:
        """Largest symbol index present (from the segment headers)."""
        return max(s.max_symbol() for s in self._segments)

    def to_database(self) -> SequenceDatabase:
        """Materialise the whole store in memory (counts one pass)."""
        ids: List[int] = []
        rows: List[np.ndarray] = []
        for sid, seq in self.scan():
            ids.append(sid)
            rows.append(np.array(seq, copy=True))
        return SequenceDatabase(rows, ids=ids)

    # -- sampling -------------------------------------------------------------

    def sample(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> SequenceDatabase:
        """Sequential uniform sampling (Algorithm 4.1); one pass.

        Draws the identical random stream in the identical global scan
        order as the flat backends, so the same *seed* selects the same
        sequence ids as the equivalent flat store would.
        """
        total = len(self)
        if n < 1:
            raise SamplingError(
                f"cannot sample {n} sequences from a database of {total}"
            )
        n = min(n, total)
        rng = _sampling_rng(rng, seed)
        ids: List[int] = []
        rows: List[np.ndarray] = []
        if n == total:
            for sid, seq in self.scan():
                ids.append(sid)
                rows.append(np.array(seq, copy=True))
            return SequenceDatabase(rows, ids=ids)
        chosen = 0
        for seen, (sid, seq) in enumerate(self.scan()):
            if chosen == n:
                break
            if rng.random() < (n - chosen) / (total - seen):
                ids.append(sid)
                rows.append(np.array(seq, copy=True))
                chosen += 1
        return SequenceDatabase(rows, ids=ids)

    def __repr__(self) -> str:
        return (
            f"SegmentedSequenceStore({self._root!r}, "
            f"segments={len(self._segments)}, N={len(self)}, "
            f"scans={self._scan_count})"
        )


def _write_segment(root: str, packed: PackedSequenceStore) -> str:
    """Write *packed* under its digest name; returns the path.

    Writing via a temp file + ``os.replace`` keeps the digest-named
    file all-or-nothing; an identical existing file is simply
    overwritten with identical bytes (idempotent re-append after a
    crash between segment write and manifest swap).
    """
    final_path = os.path.join(root, segment_file_name(packed.digest))
    tmp_path = final_path + ".tmp"
    packed.save(tmp_path)
    os.replace(tmp_path, final_path)
    return final_path


def _swap_manifest(root: str, segments: List[PackedSequenceStore]) -> None:
    """Atomically publish the manifest naming *segments* in order."""
    payload = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "manifest_digest": manifest_digest([s.digest for s in segments]),
        "segments": [
            {
                "digest": s.digest,
                "file": segment_file_name(s.digest),
                "n_sequences": len(s),
                "total_symbols": s.total_symbols(),
                "max_symbol": s.max_symbol(),
            }
            for s in segments
        ],
    }
    manifest_path = os.path.join(root, MANIFEST_NAME)
    tmp_path = manifest_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, manifest_path)


__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "SegmentedSequenceStore",
    "is_segmented_store",
    "manifest_digest",
    "peek_manifest_digest",
    "segment_file_name",
]
