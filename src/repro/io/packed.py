"""Packed binary sequence store: the out-of-core scan backend.

:class:`~repro.core.sequence.FileSequenceDatabase` is a faithful
simulation of disk residency, but it pays Python-level decode cost for
every symbol on every pass — which dwarfs the match arithmetic the
engine backends already vectorized.  :class:`PackedSequenceStore` keeps
the same logical content in one contiguous ``int32`` symbol buffer plus
an ``int64`` offsets array, memory-mapped on open, so a scan is pure
pointer arithmetic: each row is a zero-copy view into the mapped buffer.

File layout (little-endian, 64-byte header)::

    offset  size  field
    0       8     magic  b"NMPSTORE"
    8       4     format version (currently 1)
    12      4     reserved (zero)
    16      8     n_sequences        (u64)
    24      8     total_symbols      (u64)
    32      8     max_symbol         (i64)
    40      16    blake2b-16 digest of ids+offsets+symbols payload
    56      8     reserved (zero)
    64      ...   ids      int64[n]
    ...     ...   offsets  int64[n + 1]   (offsets[0] == 0, strictly increasing)
    ...     ...   symbols  int32[total_symbols]

Every section is 8-byte aligned.  :meth:`PackedSequenceStore.open`
validates the header (magic, version, section sizes, offset monotony)
in O(N) index work without touching the symbol payload;
:meth:`PackedSequenceStore.verify` recomputes the content digest.

The store honours the full scan contract of
:class:`~repro.core.sequence.SequenceDatabase` — ``scan``/``scan_chunks``
count passes, ``sample(seed=...)`` draws the identical random stream in
the identical scan order as the other backends — so mining output is
bit-identical across backends.
"""

from __future__ import annotations

import hashlib
import os
import struct
from time import perf_counter
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.sequence import (
    DEFAULT_SCAN_CHUNK_ROWS,
    SequenceChunk,
    SequenceDatabase,
    _check_chunk_rows,
    _sampling_rng,
)
from ..errors import SamplingError, SequenceDatabaseError

STORE_MAGIC = b"NMPSTORE"
STORE_VERSION = 1
_HEADER = struct.Struct("<8sII QQq 16s 8x")
HEADER_BYTES = _HEADER.size  # 64
assert HEADER_BYTES == 64


def _payload_digest(
    ids: np.ndarray, offsets: np.ndarray, symbols: np.ndarray
) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(ids).tobytes())
    digest.update(np.ascontiguousarray(offsets).tobytes())
    digest.update(np.ascontiguousarray(symbols).tobytes())
    return digest.digest()


def is_packed_store(path: Union[str, os.PathLike]) -> bool:
    """True if *path* starts with the packed-store magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(STORE_MAGIC)) == STORE_MAGIC
    except OSError:
        return False


def peek_store_digest(path: Union[str, os.PathLike]) -> str:
    """The hex content digest from a packed store's header, by reading
    64 bytes — no mapping, no payload validation.

    This is what lets a warm store cache recognise "same content,
    already open" without re-opening anything.  Raises
    :class:`SequenceDatabaseError` on a missing file, short header,
    foreign magic or unsupported version — the same failures
    :meth:`PackedSequenceStore.open` would report.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read(HEADER_BYTES)
    except OSError as exc:
        raise SequenceDatabaseError(
            f"cannot read packed store {path}: {exc}"
        ) from exc
    if len(raw) < HEADER_BYTES:
        raise SequenceDatabaseError(
            f"{path}: truncated packed store header "
            f"({len(raw)} bytes, need {HEADER_BYTES})"
        )
    magic, version, _reserved, _n, _total, _max_symbol, digest = (
        _HEADER.unpack(raw)
    )
    if magic != STORE_MAGIC:
        raise SequenceDatabaseError(
            f"{path}: not a packed sequence store (bad magic)"
        )
    if version != STORE_VERSION:
        raise SequenceDatabaseError(
            f"{path}: unsupported packed store version {version} "
            f"(this build reads version {STORE_VERSION})"
        )
    return digest.hex()


class PackedSequenceStore:
    """Disk-resident sequence database over one packed symbol buffer.

    Construct via :meth:`from_database` (pack an existing database) or
    :meth:`open` (memory-map a file written by :meth:`save`).  The store
    satisfies the same scan/sample/metadata contract as the core
    backends; rows delivered by :meth:`scan` and :meth:`scan_chunks` are
    read-only ``int32`` views into the backing buffer.
    """

    def __init__(
        self,
        ids: np.ndarray,
        offsets: np.ndarray,
        symbols: np.ndarray,
        *,
        max_symbol: int,
        path: Optional[str] = None,
        digest: Optional[bytes] = None,
    ):
        if ids.size == 0:
            raise SequenceDatabaseError(
                "a packed store must contain at least one sequence"
            )
        self._id_array = ids
        self._offsets = offsets
        self._symbols = symbols
        self._max_symbol = int(max_symbol)
        self._path = path
        self._digest = digest if digest is not None else _payload_digest(
            ids, offsets, symbols
        )
        self._ids: List[int] = ids.tolist()
        self._id_index = None
        self._scan_count = 0
        self._closed = False
        self.io_bytes_read = 0
        self.io_chunks = 0
        self.io_chunk_seconds = 0.0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_database(
        cls,
        database,
        path: Optional[Union[str, os.PathLike]] = None,
    ) -> "PackedSequenceStore":
        """Pack *database* (any scan-contract backend) into a store.

        Consumes exactly one ``scan()`` of the source.  With *path* the
        packed file is written and the returned store is backed by it
        (memory-mapped); without, the store lives in memory.
        """
        ids: List[int] = []
        lengths: List[int] = []
        rows: List[np.ndarray] = []
        max_symbol = -1
        for sid, seq in database.scan():
            seq = np.asarray(seq, dtype=np.int32)
            ids.append(int(sid))
            lengths.append(seq.size)
            rows.append(seq)
            top = int(seq.max())
            if top > max_symbol:
                max_symbol = top
        if not rows:
            raise SequenceDatabaseError(
                "cannot pack an empty database"
            )
        id_array = np.asarray(ids, dtype=np.int64)
        if len(set(ids)) != len(ids):
            raise SequenceDatabaseError("sequence ids must be unique")
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        symbols = np.concatenate(rows).astype(np.int32, copy=False)
        store = cls(id_array, offsets, symbols, max_symbol=max_symbol)
        if path is not None:
            store.save(path)
            return cls.open(path)
        return store

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write the store to *path* in the packed binary format."""
        self._require_open()
        path = os.fspath(path)
        header = _HEADER.pack(
            STORE_MAGIC,
            STORE_VERSION,
            0,
            len(self._ids),
            int(self._offsets[-1]),
            self._max_symbol,
            self._digest,
        )
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(np.ascontiguousarray(self._id_array).tobytes())
            handle.write(np.ascontiguousarray(self._offsets).tobytes())
            handle.write(np.ascontiguousarray(self._symbols).tobytes())
        self._path = path

    @classmethod
    def open(cls, path: Union[str, os.PathLike]) -> "PackedSequenceStore":
        """Memory-map a packed store file; O(N) header validation only.

        Raises :class:`SequenceDatabaseError` on a missing file, foreign
        or corrupt header, truncated payload, or an empty store.
        """
        path = os.fspath(path)
        if not os.path.exists(path):
            raise SequenceDatabaseError(f"no such packed store: {path}")
        size = os.path.getsize(path)
        if size < HEADER_BYTES:
            raise SequenceDatabaseError(
                f"{path}: truncated packed store header "
                f"({size} bytes, need {HEADER_BYTES})"
            )
        with open(path, "rb") as handle:
            raw = handle.read(HEADER_BYTES)
        magic, version, _reserved, n, total, max_symbol, digest = (
            _HEADER.unpack(raw)
        )
        if magic != STORE_MAGIC:
            raise SequenceDatabaseError(
                f"{path}: not a packed sequence store (bad magic)"
            )
        if version != STORE_VERSION:
            raise SequenceDatabaseError(
                f"{path}: unsupported packed store version {version} "
                f"(this build reads version {STORE_VERSION})"
            )
        if n == 0:
            raise SequenceDatabaseError(f"{path} contains no sequences")
        expected = HEADER_BYTES + 8 * n + 8 * (n + 1) + 4 * total
        if size != expected:
            raise SequenceDatabaseError(
                f"{path}: truncated or corrupt packed store "
                f"({size} bytes, header promises {expected})"
            )
        # The base-class ndarray view over the mapping matters: slicing
        # a np.memmap subclass pays ~15x the cost of a plain ndarray
        # slice (subclass __getitem__ + __array_finalize__ per row),
        # which would dominate a chunked scan of short sequences.  The
        # view keeps the mapping alive through its .base chain.
        buffer = np.asarray(np.memmap(path, dtype=np.uint8, mode="r"))
        ids_end = HEADER_BYTES + 8 * n
        offsets_end = ids_end + 8 * (n + 1)
        ids = buffer[HEADER_BYTES:ids_end].view(np.dtype("<i8"))
        offsets = buffer[ids_end:offsets_end].view(np.dtype("<i8"))
        symbols = buffer[offsets_end:].view(np.dtype("<i4"))
        if int(offsets[0]) != 0 or int(offsets[-1]) != total:
            raise SequenceDatabaseError(
                f"{path}: corrupt offsets table (bounds do not match header)"
            )
        if not np.all(np.diff(offsets) > 0):
            raise SequenceDatabaseError(
                f"{path}: corrupt offsets table (offsets must be strictly "
                "increasing; empty sequences are not allowed)"
            )
        return cls(
            ids,
            offsets,
            symbols,
            max_symbol=max_symbol,
            path=path,
            digest=digest,
        )

    def to_database(self) -> SequenceDatabase:
        """Materialise the store in memory (counts one pass)."""
        ids: List[int] = []
        rows: List[np.ndarray] = []
        for sid, seq in self.scan():
            ids.append(sid)
            rows.append(np.array(seq, copy=True))
        return SequenceDatabase(rows, ids=ids)

    def save_text(self, path: Union[str, os.PathLike]) -> None:
        """Stream the store into the one-sequence-per-line text format
        (counts one pass); inverse of packing a text file."""
        with open(path, "w", encoding="ascii") as handle:
            for sid, seq in self.scan():
                symbols = " ".join(str(int(v)) for v in seq)
                handle.write(f"{sid}\t{symbols}\n")

    # -- integrity ------------------------------------------------------------

    @property
    def digest(self) -> str:
        """Hex blake2b-16 digest of the ids+offsets+symbols payload."""
        return self._digest.hex()

    def verify(self) -> None:
        """Recompute the content digest; raise on mismatch.

        :meth:`open` only checks the header and section sizes — this is
        the full O(total_symbols) integrity pass.
        """
        self._require_open()
        actual = _payload_digest(self._id_array, self._offsets, self._symbols)
        if actual != self._digest:
            raise SequenceDatabaseError(
                f"{self._path or '<memory>'}: packed store content digest "
                f"mismatch (header {self._digest.hex()}, payload "
                f"{actual.hex()})"
            )

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; every data access then
        raises instead of touching the released mapping."""
        return self._closed

    def close(self) -> None:
        """Release the store's buffers (and, for a file-backed store,
        the memory mapping once no row views outlive it).  Idempotent.

        The ids/offsets/symbols arrays are views into one mapped
        buffer; dropping the store's references lets CPython unmap the
        file as soon as the last externally-held row view dies.  After
        ``close()`` every scan/sample/row access raises
        :class:`SequenceDatabaseError` cleanly — there is no window
        where a caller can read through a stale mapping.  Metadata
        (``len``, ``digest``, ``path``, ``total_symbols``) stays
        readable, which is what cache eviction logging needs.
        """
        if self._closed:
            return
        self._closed = True
        self._total_symbols = int(self._offsets[-1])
        self._id_array = None
        self._offsets = None
        self._symbols = None
        self._id_index = None

    def __enter__(self) -> "PackedSequenceStore":
        self._require_open()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise SequenceDatabaseError(
                f"packed store {self._path or '<memory>'} is closed"
            )

    # -- scan accounting ------------------------------------------------------

    @property
    def path(self) -> Optional[str]:
        return self._path

    @property
    def scan_count(self) -> int:
        return self._scan_count

    def reset_scan_count(self) -> None:
        self._scan_count = 0

    def scan(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(sequence_id, row_view)`` pairs; counts as one pass."""
        self._require_open()
        self._scan_count += 1
        offsets = self._offsets
        symbols = self._symbols
        for index, sid in enumerate(self._ids):
            row = symbols[int(offsets[index]):int(offsets[index + 1])]
            self.io_bytes_read += row.nbytes
            yield sid, row

    def scan_chunks(
        self, chunk_rows: int = DEFAULT_SCAN_CHUNK_ROWS
    ) -> Iterator[SequenceChunk]:
        """Yield zero-copy :class:`SequenceChunk` blocks; one pass."""
        _check_chunk_rows(chunk_rows)
        self._require_open()
        self._scan_count += 1
        started = perf_counter()
        for start, stop, chunk in self._slice_chunks(0, len(self._ids),
                                                     chunk_rows):
            self.io_chunks += 1
            self.io_bytes_read += 4 * int(
                self._offsets[stop] - self._offsets[start]
            )
            self.io_chunk_seconds += perf_counter() - started
            yield chunk
            started = perf_counter()

    def _slice_chunks(
        self, row_start: int, row_stop: int, chunk_rows: int
    ) -> Iterator[Tuple[int, int, SequenceChunk]]:
        offsets = self._offsets
        symbols = self._symbols
        for start in range(row_start, row_stop, chunk_rows):
            stop = min(start + chunk_rows, row_stop)
            rows = [
                symbols[int(offsets[i]):int(offsets[i + 1])]
                for i in range(start, stop)
            ]
            yield start, stop, SequenceChunk(self._ids[start:stop], rows)

    def rows_slice(self, row_start: int, row_stop: int) -> List[np.ndarray]:
        """Zero-copy row views for ``[row_start, row_stop)``.

        Partial access for external executors (worker pools); like
        :meth:`sequence`, it is *not* counted as a pass — the dispatching
        side accounts for the logical full pass.
        """
        self._require_open()
        offsets = self._offsets
        symbols = self._symbols
        return [
            symbols[int(offsets[i]):int(offsets[i + 1])]
            for i in range(row_start, row_stop)
        ]

    def external_pass_spec(self) -> Optional[Tuple[str, str]]:
        """Describe this store for an external executor making one pass.

        Returns ``(path, digest_hex)`` for a file-backed store — enough
        for a worker process to open the same content independently and
        detect staleness — or ``None`` for an in-memory store.  Counts
        one pass and charges the full payload to :attr:`io_bytes_read`;
        the dispatcher adds its chunk count to :attr:`io_chunks`.
        """
        if self._path is None:
            return None
        self.begin_external_pass()
        return self._path, self.digest

    def begin_external_pass(self) -> None:
        """Account one logical pass executed by an external counting tier.

        Workers map the file themselves, so the parent-side store never
        sees the row reads — this charges the one scan and the full
        symbol payload the external pass represents.  Call it exactly
        once per dispatched scatter-gather pass, *after* deciding to
        dispatch (a pass that falls back inline is counted by the
        inline scan instead).
        """
        self._require_open()
        self._scan_count += 1
        self.io_bytes_read += self._symbols.nbytes

    def shard_layout(
        self,
    ) -> Optional[List[Tuple[str, str, int, np.ndarray]]]:
        """Shardable description of this store for a counting tier.

        Returns a single ``(path, digest, n_rows, offsets)`` part for a
        file-backed store — the offsets table lets the dispatcher weigh
        shard bounds by symbol count — or ``None`` when there is no
        path to ship to workers.  Pure metadata: consumes no scan and
        charges no I/O (see :meth:`begin_external_pass`).
        """
        self._require_open()
        if self._path is None:
            return None
        return [(self._path, self.digest, len(self._ids), self._offsets)]

    # -- metadata -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def ids(self) -> Tuple[int, ...]:
        return tuple(self._ids)

    def sequence(self, sequence_id: int) -> np.ndarray:
        """Fetch one row view by id (not counted as a scan)."""
        self._require_open()
        if self._id_index is None:
            self._id_index = {
                sid: index for index, sid in enumerate(self._ids)
            }
        try:
            index = self._id_index[int(sequence_id)]
        except KeyError:
            raise SequenceDatabaseError(
                f"no sequence with id {sequence_id}"
            ) from None
        return self._symbols[
            int(self._offsets[index]):int(self._offsets[index + 1])
        ]

    def total_symbols(self) -> int:
        """Total number of symbol occurrences (from the header)."""
        if self._closed:
            return self._total_symbols
        return int(self._offsets[-1])

    def average_length(self) -> float:
        """The paper's ``l̄_S``: mean sequence length."""
        return self.total_symbols() / len(self._ids)

    def max_symbol(self) -> int:
        """Largest symbol index present (from the header)."""
        return self._max_symbol

    # -- sampling -------------------------------------------------------------

    def sample(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> SequenceDatabase:
        """Sequential uniform sampling (Algorithm 4.1); one pass.

        Draws the identical random stream in the identical scan order as
        the core backends, so the same *seed* selects the same sequence
        ids.  Rows are copied out of the mapped buffer — the sample is
        what Phase 2 mines, repeatedly.
        """
        total = len(self)
        if n < 1:
            raise SamplingError(
                f"cannot sample {n} sequences from a database of {total}"
            )
        n = min(n, total)
        rng = _sampling_rng(rng, seed)
        ids: List[int] = []
        rows: List[np.ndarray] = []
        if n == total:
            for sid, seq in self.scan():
                ids.append(sid)
                rows.append(np.array(seq, copy=True))
            return SequenceDatabase(rows, ids=ids)
        chosen = 0
        for seen, (sid, seq) in enumerate(self.scan()):
            if chosen == n:
                break
            if rng.random() < (n - chosen) / (total - seen):
                ids.append(sid)
                rows.append(np.array(seq, copy=True))
                chosen += 1
        return SequenceDatabase(rows, ids=ids)

    def __repr__(self) -> str:
        backing = self._path or "<memory>"
        return (
            f"PackedSequenceStore({backing!r}, N={len(self)}, "
            f"symbols={self.total_symbols()}, scans={self._scan_count})"
        )
