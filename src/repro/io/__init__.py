"""I/O subsystem: out-of-core packed sequence storage and chunked scans.

:class:`PackedSequenceStore` is the disk-resident scan backend — all
symbols in one memory-mapped ``int32`` buffer, rows delivered as
zero-copy views.  The chunked-scan primitives (:class:`SequenceChunk`,
:func:`iter_chunks`) live in :mod:`repro.core.sequence` so the core
backends can implement them without a circular import; they are
re-exported here as the public face of the streaming-scan API.
"""

from ..core.sequence import (
    DEFAULT_SCAN_CHUNK_ROWS,
    SequenceChunk,
    iter_chunks,
)
from .packed import (
    HEADER_BYTES,
    STORE_MAGIC,
    STORE_VERSION,
    PackedSequenceStore,
    is_packed_store,
    peek_store_digest,
)
from .segments import (
    MANIFEST_NAME,
    SegmentedSequenceStore,
    is_segmented_store,
    manifest_digest,
    peek_manifest_digest,
)

__all__ = [
    "DEFAULT_SCAN_CHUNK_ROWS",
    "HEADER_BYTES",
    "MANIFEST_NAME",
    "PackedSequenceStore",
    "STORE_MAGIC",
    "STORE_VERSION",
    "SegmentedSequenceStore",
    "SequenceChunk",
    "is_packed_store",
    "is_segmented_store",
    "iter_chunks",
    "manifest_digest",
    "peek_manifest_digest",
    "peek_store_digest",
]
