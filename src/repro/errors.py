"""Exception hierarchy for the noisymine library.

Every error raised deliberately by this package derives from
:class:`NoisyMineError`, so callers can catch library failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class NoisyMineError(Exception):
    """Base class for all errors raised by the noisymine library."""


class AlphabetError(NoisyMineError):
    """A symbol or index does not belong to the alphabet."""


class PatternError(NoisyMineError):
    """A pattern violates the model's structural rules.

    The paper (Definition 3.2) requires that neither the first nor the
    last element of a pattern is the eternal symbol ``*`` and that a
    pattern contains at least one non-eternal symbol.
    """


class CompatibilityMatrixError(NoisyMineError):
    """A compatibility matrix is malformed.

    Raised when the matrix is not square, contains values outside
    ``[0, 1]``, or has a column that does not sum to one (each observed
    symbol must induce a probability distribution over true symbols,
    per Definition 3.4 and Figure 2 of the paper).
    """


class SequenceDatabaseError(NoisyMineError):
    """A sequence database is malformed or an operation on it is invalid."""


class MiningError(NoisyMineError):
    """A mining run was configured inconsistently or failed midway."""


class SamplingError(NoisyMineError):
    """A sampling request cannot be satisfied (e.g. more samples than rows)."""


class ServiceError(NoisyMineError):
    """A mining-service request failed (bad job payload, unknown job,
    unreachable daemon, or a job that finished in error)."""
